//! LOSO evaluation harnesses reproducing the paper's protocols.
//!
//! * [`general_model`] — the "Without Clustering" baseline: one model
//!   trained on a random group of `general_subjects` volunteers (the
//!   average cluster size), validated LOSO.
//! * [`cl_validation`] — Clustering-and-Learning validation: Global
//!   Clustering of the full population, then *intra-cluster* LOSO per
//!   cluster; the robustness test (RT CL) evaluates each fold's model on
//!   the volunteers of the *other* clusters.
//! * [`clear_folds`] — the complete CLEAR validation: each volunteer in
//!   turn is excluded from clustering and pre-training, then cold-start
//!   assigned from 10 % unlabeled data (CLEAR w/o FT, plus RT CLEAR on
//!   the wrong-cluster models), and finally fine-tuned with 20 % labeled
//!   data (CLEAR w/ FT). Optionally the same folds are deployed on the
//!   simulated edge devices for Table II.
//! * [`clear_folds_parallel`] — the same validation fanned out across
//!   scoped worker threads sharing the prepared cohort read-only;
//!   bit-identical to the sequential driver at any thread count.

use crate::config::ClearConfig;
use crate::dataset::PreparedCohort;
use crate::pipeline::{build_model, CloudTraining};
use clear_clustering::refine::refined_fit;
use clear_edge::{Device, EdgeDeployment, Measurement};
use clear_nn::metrics::{Aggregate, FoldScore};
use clear_nn::train;
use clear_sim::SubjectId;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of the CL validation protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClValidation {
    /// Intra-cluster LOSO performance ("CL validation" row).
    pub cl: Aggregate,
    /// Robustness test: same models evaluated on other clusters' subjects
    /// ("RT CL" row).
    pub rt: Aggregate,
}

/// One CLEAR-validation fold (one left-out volunteer `V_x`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClearFold {
    /// The left-out volunteer.
    pub subject: usize,
    /// Cluster chosen by the unsupervised Cluster Assignment.
    pub assigned_cluster: usize,
    /// Whether the assigned cluster's majority ground-truth archetype
    /// matches the volunteer's archetype (scoring only).
    pub assignment_correct: bool,
    /// Score of the assigned cluster's model without fine-tuning.
    pub without_ft: FoldScore,
    /// Mean score of the other clusters' models (robustness test).
    pub rt: FoldScore,
    /// Score after fine-tuning with the labeled budget (cloud/GPU).
    pub with_ft: FoldScore,
    /// Per-device results, present when edge evaluation was requested.
    pub edge: Option<EdgeFold>,
}

/// Edge-deployment results of one fold (Table II data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeFold {
    /// Without-FT score per device, ordered as [`Device::all`].
    pub without_ft: Vec<FoldScore>,
    /// Robustness-test score per device.
    pub rt: Vec<FoldScore>,
    /// With-FT (on-device fine-tuning) score per device.
    pub with_ft: Vec<FoldScore>,
    /// Simulated measurement block per device.
    pub measurements: Vec<Measurement>,
}

/// Aggregated CLEAR validation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClearValidation {
    /// Per-volunteer folds.
    pub folds: Vec<ClearFold>,
    /// "CLEAR w/o FT" row.
    pub without_ft: Aggregate,
    /// "RT CLEAR" row.
    pub rt: Aggregate,
    /// "CLEAR w FT" row.
    pub with_ft: Aggregate,
    /// Fraction of volunteers assigned to the archetype-correct cluster.
    pub assignment_accuracy: f32,
}

impl ClearValidation {
    /// Aggregates fold results.
    ///
    /// # Panics
    ///
    /// Panics if `folds` is empty.
    pub fn from_folds(folds: Vec<ClearFold>) -> Self {
        assert!(!folds.is_empty(), "no folds to aggregate");
        let without: Vec<FoldScore> = folds.iter().map(|f| f.without_ft).collect();
        let rt: Vec<FoldScore> = folds.iter().map(|f| f.rt).collect();
        let with: Vec<FoldScore> = folds.iter().map(|f| f.with_ft).collect();
        let correct = folds.iter().filter(|f| f.assignment_correct).count();
        let assignment_accuracy = correct as f32 / folds.len() as f32;
        Self {
            without_ft: Aggregate::from_scores(&without),
            rt: Aggregate::from_scores(&rt),
            with_ft: Aggregate::from_scores(&with),
            assignment_accuracy,
            folds,
        }
    }
}

/// The "General Model" baseline: `config.general_subjects` random
/// volunteers, one shared model, LOSO across them.
///
/// # Panics
///
/// Panics if the cohort has fewer subjects than `config.general_subjects`.
pub fn general_model(data: &PreparedCohort, config: &ClearConfig) -> Aggregate {
    let mut subjects = data.subject_ids();
    assert!(
        subjects.len() >= config.general_subjects,
        "cohort smaller than the requested general-model group"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0x6E6E));
    subjects.shuffle(&mut rng);
    let group: Vec<SubjectId> = subjects[..config.general_subjects].to_vec();

    let mut scores = Vec::with_capacity(group.len());
    for (fold, &left_out) in group.iter().enumerate() {
        let train_subjects: Vec<SubjectId> =
            group.iter().copied().filter(|&s| s != left_out).collect();
        let normalizer = data.fit_normalizer_corrected(&train_subjects);
        let train_ds = data.corrected_dataset_for_subjects(&train_subjects, &normalizer);
        let mut net = build_model(data.windows(), config, config.seed ^ (fold as u64) << 8);
        let (val, tr) = train_ds.split_stratified(config.val_fraction, config.seed);
        if val.is_empty() || tr.is_empty() {
            train::train(&mut net, &train_ds, None, &config.train);
        } else {
            train::train(&mut net, &tr, Some(&val), &config.train);
        }
        let lo_baseline = data.subject_baseline(left_out);
        let test_ds =
            data.corrected_nn_dataset(&data.indices_of(left_out), &lo_baseline, &normalizer);
        scores.push(train::evaluate(&net, &test_ds));
    }
    Aggregate::from_scores(&scores)
}

/// CL validation with its robustness test.
///
/// Global Clustering runs once on the *entire* population; each cluster is
/// then validated with intra-cluster LOSO, and each fold's model is also
/// evaluated on the other clusters' volunteers (RT CL).
pub fn cl_validation(data: &PreparedCohort, config: &ClearConfig) -> ClValidation {
    let subjects = data.subject_ids();
    let normalizer = data.fit_normalizer(&subjects);
    let user_vectors: Vec<Vec<f32>> = subjects
        .iter()
        .map(|&s| data.user_vector(&data.indices_of(s), &normalizer))
        .collect();
    let mut refine = config.refine;
    refine.kmeans.k = config.k;
    let clustering = refined_fit(&user_vectors, &refine);

    let mut cl_scores = Vec::new();
    let mut rt_scores = Vec::new();
    for cluster in 0..config.k {
        let members: Vec<SubjectId> = subjects
            .iter()
            .zip(clustering.assignments())
            .filter(|(_, &c)| c == cluster)
            .map(|(&s, _)| s)
            .collect();
        if members.len() < 2 {
            continue;
        }
        let outsiders: Vec<SubjectId> = subjects
            .iter()
            .zip(clustering.assignments())
            .filter(|(_, &c)| c != cluster)
            .map(|(&s, _)| s)
            .collect();
        for (fold, &left_out) in members.iter().enumerate() {
            let train_subjects: Vec<SubjectId> =
                members.iter().copied().filter(|&s| s != left_out).collect();
            let fold_norm = data.fit_normalizer_corrected(&train_subjects);
            let train_ds = data.corrected_dataset_for_subjects(&train_subjects, &fold_norm);
            let mut net = build_model(
                data.windows(),
                config,
                config.seed ^ ((cluster as u64) << 16 | fold as u64),
            );
            let (val, tr) = train_ds.split_stratified(config.val_fraction, config.seed);
            if val.is_empty() || tr.is_empty() {
                train::train(&mut net, &train_ds, None, &config.train);
            } else {
                train::train(&mut net, &tr, Some(&val), &config.train);
            }
            let lo_baseline = data.subject_baseline(left_out);
            let test_ds =
                data.corrected_nn_dataset(&data.indices_of(left_out), &lo_baseline, &fold_norm);
            cl_scores.push(train::evaluate(&net, &test_ds));

            // Robustness test: the same checkpoint on other clusters' data.
            if !outsiders.is_empty() {
                let out_ds = data.corrected_dataset_for_subjects(&outsiders, &fold_norm);
                rt_scores.push(train::evaluate(&net, &out_ds));
            }
        }
    }
    ClValidation {
        cl: Aggregate::from_scores(&cl_scores),
        rt: Aggregate::from_scores(&rt_scores),
    }
}

/// Splits a new user's recording indices into (CA unlabeled, FT labeled,
/// test) per the paper's budgets.
///
/// The CA budget is drawn blindly (its data is unlabeled by definition);
/// the FT budget is **stratified by label** — the user labels a balanced
/// sample, as any practical labeling session would, and the paper draws
/// its 20 % from an already-labeled pool.
fn split_user_budget(
    data: &PreparedCohort,
    indices: &[usize],
    config: &ClearConfig,
    seed: u64,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut shuffled = indices.to_vec();
    shuffled.shuffle(&mut SmallRng::seed_from_u64(seed));
    let n = shuffled.len();
    let ca_n = ((n as f32 * config.ca_fraction).ceil() as usize).clamp(1, n.saturating_sub(2));
    let ft_n =
        ((n as f32 * config.ft_fraction).ceil() as usize).clamp(1, n.saturating_sub(ca_n + 1));
    let ca = shuffled[..ca_n].to_vec();
    let rest = &shuffled[ca_n..];
    // Interleave labels: fear, non-fear, fear, ... so any prefix is as
    // balanced as possible.
    let fear: Vec<usize> = rest
        .iter()
        .copied()
        .filter(|&i| data.map_and_label(i).1 == clear_sim::Emotion::Fear)
        .collect();
    let calm: Vec<usize> = rest
        .iter()
        .copied()
        .filter(|&i| data.map_and_label(i).1 == clear_sim::Emotion::NonFear)
        .collect();
    let mut interleaved = Vec::with_capacity(rest.len());
    let mut fi = fear.iter();
    let mut ci = calm.iter();
    loop {
        match (fi.next(), ci.next()) {
            (None, None) => break,
            (f, c) => {
                if let Some(&i) = f {
                    interleaved.push(i);
                }
                if let Some(&i) = c {
                    interleaved.push(i);
                }
            }
        }
    }
    let ft = interleaved[..ft_n].to_vec();
    let test = interleaved[ft_n..].to_vec();
    (ca, ft, test)
}

/// Majority ground-truth archetype of each cluster in a fitted cloud.
fn cluster_majority_archetypes(data: &PreparedCohort, cloud: &CloudTraining) -> Vec<usize> {
    (0..cloud.cluster_count())
        .map(|c| {
            let mut counts = [0usize; 4];
            for s in cloud.members_of(c) {
                counts[data.archetype_of(s)] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .map(|(a, _)| a)
                .unwrap_or(0)
        })
        .collect()
}

/// Runs one CLEAR-validation fold: leaves `subjects[fold_no]` out of the
/// cloud stage, cold-start assigns them, and evaluates without/with
/// fine-tuning (plus the edge deployment when requested).
///
/// Every random stream is keyed on `config.seed` and `fold_no` alone, so
/// the fold's result does not depend on which thread runs it or in what
/// order — the sequential and parallel drivers below produce bit-identical
/// output by construction.
fn run_fold(
    data: &PreparedCohort,
    config: &ClearConfig,
    edge: bool,
    subjects: &[SubjectId],
    fold_no: usize,
) -> ClearFold {
    let vx = subjects[fold_no];
    let initial: Vec<SubjectId> = subjects.iter().copied().filter(|&s| s != vx).collect();
    let cloud = CloudTraining::fit(data, &initial, config);
    let majorities = cluster_majority_archetypes(data, &cloud);

    let vx_indices = data.indices_of(vx);
    let (ca_idx, ft_idx, test_idx) = split_user_budget(
        data,
        &vx_indices,
        config,
        config.seed.wrapping_add(0xCA00 + fold_no as u64),
    );

    // Cold-start assignment from unlabeled data.
    let assigned = cloud.assign_user(data, &ca_idx);
    let assignment_correct = majorities[assigned] == data.archetype_of(vx);

    // CLEAR w/o FT: assigned model on everything except the CA budget.
    let eval_idx: Vec<usize> = ft_idx.iter().chain(test_idx.iter()).copied().collect();
    let without_ft = cloud.evaluate(data, assigned, &eval_idx);

    // RT CLEAR: mean score of the other clusters' models.
    let mut rt_acc = 0.0f32;
    let mut rt_f1 = 0.0f32;
    let mut rt_n = 0usize;
    for c in 0..cloud.cluster_count() {
        if c == assigned {
            continue;
        }
        let s = cloud.evaluate(data, c, &eval_idx);
        rt_acc += s.accuracy;
        rt_f1 += s.f1;
        rt_n += 1;
    }
    let rt = FoldScore {
        accuracy: rt_acc / rt_n.max(1) as f32,
        f1: rt_f1 / rt_n.max(1) as f32,
    };

    // CLEAR w/ FT (cloud/GPU): fine-tune with the labeled budget.
    let ft_ds = cloud.user_dataset(data, &ft_idx);
    let test_ds = cloud.user_dataset(data, &test_idx);
    let personalized = cloud.fine_tune(assigned, &ft_ds, &config.finetune);
    let with_ft = train::evaluate(&personalized, &test_ds);

    let edge_fold = edge.then(|| {
        let input_shape = [1usize, clear_features::FEATURE_COUNT, data.windows()];
        let mut without = Vec::new();
        let mut rt_dev = Vec::new();
        let mut with = Vec::new();
        let mut meas = Vec::new();
        for device in Device::all() {
            let mut dep = EdgeDeployment::new(cloud.model(assigned).clone(), device, &input_shape);
            let eval_ds = cloud.user_dataset(data, &eval_idx);
            without.push(dep.evaluate(&eval_ds));
            // RT on-device: wrong-cluster checkpoints, same precision.
            let mut acc = 0.0f32;
            let mut f1 = 0.0f32;
            let mut n = 0usize;
            for c in 0..cloud.cluster_count() {
                if c == assigned {
                    continue;
                }
                let mut rdep = EdgeDeployment::new(cloud.model(c).clone(), device, &input_shape);
                let s = rdep.evaluate(&eval_ds);
                acc += s.accuracy;
                f1 += s.f1;
                n += 1;
            }
            rt_dev.push(FoldScore {
                accuracy: acc / n.max(1) as f32,
                f1: f1 / n.max(1) as f32,
            });
            // On-device fine-tuning with the labeled budget.
            let outcome = dep.fine_tune(&ft_ds, &test_ds, &config.finetune);
            meas.push(dep.measurement(&outcome));
            with.push(outcome.score);
        }
        EdgeFold {
            without_ft: without,
            rt: rt_dev,
            with_ft: with,
            measurements: meas,
        }
    });

    ClearFold {
        subject: vx.0,
        assigned_cluster: assigned,
        assignment_correct,
        without_ft,
        rt,
        with_ft,
        edge: edge_fold,
    }
}

/// Runs the complete CLEAR validation (optionally with edge deployment),
/// one fold per volunteer.
///
/// `progress` is called after each fold with `(done, total)` — the
/// experiment binaries use it for console progress.
pub fn clear_folds(
    data: &PreparedCohort,
    config: &ClearConfig,
    edge: bool,
    mut progress: impl FnMut(usize, usize),
) -> ClearValidation {
    let subjects = data.subject_ids();
    let total = subjects.len();
    let mut folds = Vec::with_capacity(total);
    for fold_no in 0..total {
        folds.push(run_fold(data, config, edge, &subjects, fold_no));
        progress(fold_no + 1, total);
    }
    ClearValidation::from_folds(folds)
}

/// The parallel CLEAR-validation driver: same folds as [`clear_folds`],
/// fanned out across `threads` scoped worker threads that share the
/// prepared cohort and configuration read-only.
///
/// Folds are claimed from an atomic work index and written into their
/// fold-numbered slot, so the aggregated [`ClearValidation`] is
/// **bit-identical** to the sequential driver's at any thread count —
/// each fold's random streams are keyed on `config.seed` and the fold
/// number only. `progress` observes completion counts (`done` is
/// monotonic), not fold order.
///
/// `threads == 1` (or 0) degrades to the sequential driver.
pub fn clear_folds_parallel(
    data: &PreparedCohort,
    config: &ClearConfig,
    edge: bool,
    threads: usize,
    progress: impl FnMut(usize, usize) + Send,
) -> ClearValidation {
    if threads <= 1 {
        return clear_folds(data, config, edge, progress);
    }
    let subjects = data.subject_ids();
    let total = subjects.len();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<ClearFold>>> = Mutex::new(vec![None; total]);
    let progress = Mutex::new(progress);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(total.max(1)) {
            scope.spawn(|_| loop {
                let fold_no = next.fetch_add(1, Ordering::SeqCst);
                if fold_no >= total {
                    break;
                }
                let fold = run_fold(data, config, edge, &subjects, fold_no);
                slots.lock()[fold_no] = Some(fold);
                let finished = done.fetch_add(1, Ordering::SeqCst) + 1;
                (*progress.lock())(finished, total);
            });
        }
    })
    .expect("a fold worker panicked");
    let folds: Vec<ClearFold> = slots
        .into_inner()
        .into_iter()
        .map(|f| f.expect("every fold index is claimed by exactly one worker"))
        .collect();
    ClearValidation::from_folds(folds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_data() -> (ClearConfig, PreparedCohort) {
        let config = ClearConfig::quick(21);
        let data = PreparedCohort::prepare(&config);
        (config, data)
    }

    #[test]
    fn split_user_budget_partitions_and_balances_ft() {
        let config = ClearConfig::quick(3);
        let data = PreparedCohort::prepare(&config);
        let subject = data.subject_ids()[0];
        let indices = data.indices_of(subject); // 8 recordings, 4 fear
        let (ca, ft, test) = split_user_budget(&data, &indices, &config, 9);
        assert_eq!(ca.len(), 1); // ceil(0.1 · 8)
        assert_eq!(ft.len(), 2); // ceil(0.2 · 8)
        assert_eq!(test.len(), 5);
        let mut all: Vec<usize> = ca.iter().chain(&ft).chain(&test).copied().collect();
        all.sort_unstable();
        let mut want = indices.clone();
        want.sort_unstable();
        assert_eq!(all, want);
        // FT budget is label-balanced (one fear, one non-fear here).
        let fear = ft
            .iter()
            .filter(|&&i| data.map_and_label(i).1 == clear_sim::Emotion::Fear)
            .count();
        assert_eq!(fear, 1, "ft budget should interleave labels");
    }

    #[test]
    fn general_model_runs_at_quick_scale() {
        let (config, data) = quick_data();
        let agg = general_model(&data, &config);
        assert_eq!(agg.folds, config.general_subjects);
        assert!(agg.accuracy_mean >= 0.0 && agg.accuracy_mean <= 100.0);
    }

    #[test]
    fn clear_folds_quick_end_to_end() {
        let (config, data) = quick_data();
        // Restrict to a subset for test speed: first 5 subjects as folds is
        // not supported directly, so run the full 8-subject quick profile.
        let mut calls = 0;
        let result = clear_folds(&data, &config, false, |done, total| {
            calls += 1;
            assert!(done <= total);
        });
        assert_eq!(result.folds.len(), 8);
        assert_eq!(calls, 8);
        // Above the 25 % chance level; clusters of 1-2 subjects make the
        // quick-scale assignment noisy (paper scale reaches ~80 %).
        assert!(result.assignment_accuracy >= 0.3);
        // At this toy scale (clusters of 1-2 subjects) the matched-vs-wrong
        // ordering is noisy; assert it with a margin. The strict ordering is
        // enforced at paper scale by Table1::shape_violations.
        assert!(
            result.without_ft.accuracy_mean + 8.0 >= result.rt.accuracy_mean,
            "without_ft {} far below rt {}",
            result.without_ft.accuracy_mean,
            result.rt.accuracy_mean
        );
        for f in &result.folds {
            assert!(f.edge.is_none());
            assert!(f.assigned_cluster < config.k);
        }
    }

    #[test]
    #[should_panic(expected = "no folds")]
    fn empty_folds_panics() {
        let _ = ClearValidation::from_folds(vec![]);
    }
}
