//! Classification metrics: accuracy, binary F1, confusion matrices and
//! mean ± std aggregation — the quantities reported in the paper's
//! Tables I and II.

use serde::{Deserialize, Serialize};

/// A binary (or small multi-class) confusion matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    /// `counts[truth][predicted]`.
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "at least one class required");
        Self {
            classes,
            counts: vec![vec![0; classes]; classes],
        }
    }

    /// Records one prediction.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(
            truth < self.classes && predicted < self.classes,
            "class out of range"
        );
        self.counts[truth][predicted] += 1;
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Raw count `counts[truth][predicted]`.
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Total recorded predictions.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy in `[0, 1]`; `0.0` when empty.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes).map(|c| self.counts[c][c]).sum();
        correct as f32 / total as f32
    }

    /// F1 score of class `positive` (binary-style one-vs-rest).
    ///
    /// Returns `0.0` when precision + recall is zero.
    pub fn f1(&self, positive: usize) -> f32 {
        let tp = self.counts[positive][positive] as f32;
        let fp: f32 = (0..self.classes)
            .filter(|&t| t != positive)
            .map(|t| self.counts[t][positive] as f32)
            .sum();
        let fn_: f32 = (0..self.classes)
            .filter(|&p| p != positive)
            .map(|p| self.counts[positive][p] as f32)
            .sum();
        let denom = 2.0 * tp + fp + fn_;
        if denom == 0.0 {
            0.0
        } else {
            2.0 * tp / denom
        }
    }

    /// Macro-averaged F1 over all classes.
    pub fn macro_f1(&self) -> f32 {
        (0..self.classes).map(|c| self.f1(c)).sum::<f32>() / self.classes as f32
    }

    /// Merges another matrix of the same size into this one.
    ///
    /// # Panics
    ///
    /// Panics when the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        for t in 0..self.classes {
            for p in 0..self.classes {
                self.counts[t][p] += other.counts[t][p];
            }
        }
    }
}

/// One evaluation outcome (e.g. one LOSO fold).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoldScore {
    /// Accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// F1 of the positive (fear) class in `[0, 1]`.
    pub f1: f32,
}

/// Mean ± standard deviation across folds, reported in percent as the
/// paper's tables do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Mean accuracy, percent.
    pub accuracy_mean: f32,
    /// Accuracy standard deviation, percent.
    pub accuracy_std: f32,
    /// Mean F1, percent.
    pub f1_mean: f32,
    /// F1 standard deviation, percent.
    pub f1_std: f32,
    /// Number of folds aggregated.
    pub folds: usize,
}

impl Aggregate {
    /// Aggregates fold scores into mean ± std (percent).
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty.
    pub fn from_scores(scores: &[FoldScore]) -> Self {
        assert!(!scores.is_empty(), "cannot aggregate zero folds");
        let n = scores.len() as f32;
        let acc_mean = scores.iter().map(|s| s.accuracy).sum::<f32>() / n;
        let f1_mean = scores.iter().map(|s| s.f1).sum::<f32>() / n;
        let acc_var = scores
            .iter()
            .map(|s| (s.accuracy - acc_mean).powi(2))
            .sum::<f32>()
            / n;
        let f1_var = scores.iter().map(|s| (s.f1 - f1_mean).powi(2)).sum::<f32>() / n;
        Self {
            accuracy_mean: acc_mean * 100.0,
            accuracy_std: acc_var.sqrt() * 100.0,
            f1_mean: f1_mean * 100.0,
            f1_std: f1_var.sqrt() * 100.0,
            folds: scores.len(),
        }
    }
}

impl std::fmt::Display for Aggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc {:.2} ± {:.2} %, f1 {:.2} ± {:.2} % ({} folds)",
            self.accuracy_mean, self.accuracy_std, self.f1_mean, self.f1_std, self.folds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..5 {
            cm.record(0, 0);
            cm.record(1, 1);
        }
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.f1(1), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.total(), 10);
    }

    #[test]
    fn known_confusion_values() {
        // truth 1 predicted 1: 8 (TP); truth 0 predicted 1: 2 (FP);
        // truth 1 predicted 0: 4 (FN); truth 0 predicted 0: 6 (TN).
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..8 {
            cm.record(1, 1);
        }
        for _ in 0..2 {
            cm.record(0, 1);
        }
        for _ in 0..4 {
            cm.record(1, 0);
        }
        for _ in 0..6 {
            cm.record(0, 0);
        }
        assert!((cm.accuracy() - 0.7).abs() < 1e-6);
        // F1 = 2·8 / (2·8 + 2 + 4) = 16/22.
        assert!((cm.f1(1) - 16.0 / 22.0).abs() < 1e-6);
        assert_eq!(cm.count(1, 0), 4);
    }

    #[test]
    fn empty_matrix_metrics_are_zero() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(1), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new(2);
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(2);
        b.record(0, 0);
        b.record(1, 0);
        a.merge(&b);
        assert_eq!(a.count(0, 0), 2);
        assert_eq!(a.count(1, 0), 1);
    }

    #[test]
    fn aggregate_mean_std_in_percent() {
        let scores = [
            FoldScore {
                accuracy: 0.8,
                f1: 0.75,
            },
            FoldScore {
                accuracy: 0.9,
                f1: 0.85,
            },
        ];
        let agg = Aggregate::from_scores(&scores);
        assert!((agg.accuracy_mean - 85.0).abs() < 1e-4);
        assert!((agg.accuracy_std - 5.0).abs() < 1e-4);
        assert!((agg.f1_mean - 80.0).abs() < 1e-4);
        assert_eq!(agg.folds, 2);
        let text = agg.to_string();
        assert!(text.contains("85.00"));
    }

    #[test]
    #[should_panic(expected = "zero folds")]
    fn aggregate_empty_panics() {
        let _ = Aggregate::from_scores(&[]);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn record_out_of_range_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }
}
