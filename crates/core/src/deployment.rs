//! Production deployment artifacts: persisting a trained CLEAR system,
//! onboarding users incrementally, and serving under degraded conditions.
//!
//! The experiment harnesses re-train everything per fold; a product does
//! not. [`ClearBundle`] is the serializable artifact the cloud ships to
//! devices — normalization statistics, cluster centroids with their
//! internal sub-centroid hierarchy, and the per-cluster checkpoints.
//! [`ClearDeployment`] wraps a bundle at runtime: it onboards new users
//! from unlabeled feature maps, serves per-user predictions, and upgrades
//! users in place when labeled data arrives.
//!
//! Unlike the experiment harnesses, the deployment assumes its inputs are
//! *hostile*: wearable channels flatline, saturate and drop out (see
//! [`clear_features::quality`]). Serving is therefore quality-gated:
//!
//! * [`ClearDeployment::predict`] assesses each feature map, quarantines
//!   windows with no usable modality, imputes dead modality blocks from
//!   the user's cluster statistics, and returns a [`Prediction`] carrying
//!   confidence and quality — abstaining (emotion `None`) below the
//!   configured floors instead of guessing.
//! * [`ClearDeployment::onboard`] defers cluster assignment until enough
//!   good-quality maps accumulate ([`Onboarding::Deferred`]), with a
//!   retry path: later calls keep accumulating until the guardrail is
//!   met.
//! * [`ClearDeployment::personalize`] holds out a validation slice and
//!   rolls back to the cluster checkpoint when fine-tuning degrades it
//!   ([`PersonalizeOutcome::adopted`]).

use crate::config::ClearConfig;
use crate::pipeline::CloudTraining;
use crate::serving;
use clear_clustering::hierarchy::ClusterHierarchy;
use clear_features::quality::assess_map;
use clear_features::{FeatureMap, Modality, Normalizer};
use clear_nn::network::Network;
use clear_nn::train::TrainConfig;
use clear_nn::workspace::Workspace;
use clear_sim::Emotion;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors of the deployment layer.
#[derive(Debug)]
pub enum DeployError {
    /// (De)serialization failure.
    Serde(String),
    /// Referenced an unknown user.
    UnknownUser(String),
    /// Input data was unusable (empty, wrong shape).
    BadInput(&'static str),
    /// A shipped artifact failed verification: truncated or bit-flipped
    /// envelope, checksum mismatch, or weights that parsed but carry
    /// non-finite values.
    CorruptArtifact(String),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Serde(e) => write!(f, "bundle serialization failed: {e}"),
            DeployError::UnknownUser(u) => write!(f, "unknown user `{u}`"),
            DeployError::BadInput(why) => write!(f, "bad input: {why}"),
            DeployError::CorruptArtifact(why) => write!(f, "corrupt artifact: {why}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// Serving-time robustness thresholds of a [`ClearDeployment`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingPolicy {
    /// Predictions with window quality below this abstain.
    pub min_quality: f32,
    /// Predictions with softmax confidence below this abstain.
    pub min_confidence: f32,
    /// A modality block scoring below this counts as dead/missing.
    pub min_modality_score: f32,
    /// Replace dead modality blocks with cluster statistics instead of
    /// serving their raw (degenerate) values.
    pub impute_missing: bool,
    /// Feature maps scoring below this do not count toward onboarding.
    pub min_onboarding_quality: f32,
    /// Good-quality maps required before cluster assignment happens.
    pub min_onboarding_maps: usize,
    /// Labeled maps required before personalization carves a validation
    /// holdout; below this, fine-tuning is adopted unvalidated (the
    /// legacy tiny-budget behavior).
    pub min_validation_maps: usize,
    /// Fraction of the labeled sequence (its trailing, most recent part)
    /// held out to decide personalization adoption.
    pub validation_fraction: f32,
}

impl Default for ServingPolicy {
    fn default() -> Self {
        Self {
            min_quality: 0.35,
            min_confidence: 0.55,
            min_modality_score: 0.5,
            impute_missing: true,
            min_onboarding_quality: 0.5,
            min_onboarding_maps: 1,
            min_validation_maps: 4,
            validation_fraction: 0.25,
        }
    }
}

/// Numeric serving tier: which inference backend runs the quality-gated
/// forward pass (see `clear_nn::backend`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServeTier {
    /// Vectorized f32 kernels, bit-identical to the scalar reference —
    /// the safe default everywhere: same labels, same confidences, same
    /// golden tables, just faster.
    #[default]
    Exact,
    /// Int8 quantized execution. When the int8 result would abstain, the
    /// window is re-served on the exact backend before the abstention
    /// stands, so the tier can only widen coverage relative to its own
    /// abstention rate, never emit a cheap abstention the exact path
    /// would have answered.
    Fast,
}

impl ServeTier {
    /// The inference backend this tier dispatches to.
    pub fn backend(self) -> clear_nn::backend::BackendKind {
        match self {
            ServeTier::Exact => clear_nn::backend::BackendKind::Blocked,
            ServeTier::Fast => clear_nn::backend::BackendKind::Int8,
        }
    }
}

/// Which checkpoint produced a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSource {
    /// The user's fine-tuned personal checkpoint.
    Personalized,
    /// The shared pre-trained model of cluster `k`.
    Cluster(usize),
}

/// Outcome of one quality-gated inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The served label, or `None` when the deployment abstained
    /// (quarantined input, low quality, or low confidence).
    pub emotion: Option<Emotion>,
    /// Softmax probability of the winning class (0 when quarantined
    /// before inference).
    pub confidence: f32,
    /// Input quality in `[0, 1]` after accounting for imputed blocks.
    pub quality: f32,
    /// The checkpoint that ran, `None` when quarantined before inference.
    pub served_by: Option<ModelSource>,
    /// Modality blocks replaced by cluster statistics for this window.
    pub imputed: Vec<Modality>,
}

impl Prediction {
    /// Whether the deployment declined to emit a label.
    pub fn abstained(&self) -> bool {
        self.emotion.is_none()
    }
}

/// Result of an [`ClearDeployment::onboard`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Onboarding {
    /// Enough good-quality data: the user is assigned to `cluster`.
    Assigned {
        /// The assigned cluster index.
        cluster: usize,
    },
    /// Not enough good-quality maps yet; call again with more data.
    Deferred {
        /// Good maps accumulated so far (across calls).
        accumulated: usize,
        /// Good maps required by the policy.
        required: usize,
    },
}

/// Result of a [`ClearDeployment::personalize`] call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PersonalizeOutcome {
    /// Whether the fine-tuned checkpoint replaced the cluster model. When
    /// `false` the deployment rolled back and keeps serving the cluster
    /// checkpoint.
    pub adopted: bool,
    /// Whether a held-out validation slice decided adoption (tiny labeled
    /// budgets adopt unvalidated).
    pub validated: bool,
    /// Cluster-checkpoint accuracy on the validation slice.
    pub baseline_accuracy: f32,
    /// Fine-tuned accuracy on the validation slice.
    pub personalized_accuracy: f32,
}

/// Envelope kind tag of sealed bundle artifacts.
const BUNDLE_KIND: &str = "bundle";

/// The serializable cloud artifact: everything a fleet of edge devices
/// needs to run CLEAR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClearBundle {
    /// Normalization statistics of the *raw*-map path (clustering and
    /// cold-start assignment).
    pub normalizer: Normalizer,
    /// Normalization statistics of the classifier path (fit on
    /// baseline-corrected maps).
    pub clf_normalizer: Normalizer,
    /// Internal sub-centroid hierarchy for cold-start assignment.
    pub hierarchy: ClusterHierarchy,
    /// One pre-trained checkpoint per cluster.
    pub models: Vec<Network>,
    /// Feature-map window count the models expect.
    pub windows: usize,
}

impl ClearBundle {
    /// Extracts the shippable bundle from a finished cloud training run.
    pub fn from_cloud(cloud: &CloudTraining) -> Self {
        Self {
            normalizer: cloud.normalizer().clone(),
            clf_normalizer: cloud.clf_normalizer().clone(),
            hierarchy: cloud.hierarchy().clone(),
            models: (0..cloud.cluster_count())
                .map(|c| cloud.model(c).clone())
                .collect(),
            windows: cloud.windows(),
        }
    }

    /// Serializes to a sealed JSON artifact: the bundle JSON wrapped in
    /// a versioned, checksummed `clear_durable` envelope, so truncation
    /// or bit rot in transit is detected at load instead of surfacing as
    /// silently wrong weights.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::Serde`] on serializer failure.
    pub fn to_json(&self) -> Result<String, DeployError> {
        let json = serde_json::to_string(self).map_err(|e| DeployError::Serde(e.to_string()))?;
        Ok(clear_durable::envelope::seal_str(BUNDLE_KIND, &json))
    }

    /// Restores a bundle from [`ClearBundle::to_json`] output. Sealed
    /// artifacts are checksum-verified; unsealed input is accepted as
    /// legacy raw JSON. Either way the model weights are validated
    /// finite before the bundle is handed back.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::CorruptArtifact`] when envelope
    /// verification fails or any model carries NaN/infinite weights, and
    /// [`DeployError::Serde`] when the (verified) payload does not
    /// parse.
    pub fn from_json(json: &str) -> Result<Self, DeployError> {
        let payload = if clear_durable::envelope::is_sealed(json.as_bytes()) {
            clear_durable::envelope::open_str(BUNDLE_KIND, json)
                .map_err(|e| DeployError::CorruptArtifact(e.to_string()))?
        } else {
            json
        };
        let bundle: Self =
            serde_json::from_str(payload).map_err(|e| DeployError::Serde(e.to_string()))?;
        for (i, model) in bundle.models.iter().enumerate() {
            if !model.all_finite() {
                return Err(DeployError::CorruptArtifact(format!(
                    "cluster model {i} carries non-finite weights"
                )));
            }
        }
        Ok(bundle)
    }

    /// Number of clusters in the bundle.
    pub fn cluster_count(&self) -> usize {
        self.models.len()
    }
}

/// One onboarded user's runtime state.
#[derive(Debug, Clone)]
struct UserState {
    cluster: usize,
    /// The user's physiological baseline, accumulated from their unlabeled
    /// data at onboarding; subtracted before classification.
    baseline: Vec<f32>,
    /// Personalized checkpoint once fine-tuned; otherwise the cluster
    /// model serves this user.
    personalized: Option<Network>,
    /// Windows quarantined for this user (no usable modality).
    quarantined: usize,
}

/// A runtime CLEAR service: cold-start onboarding, per-user inference and
/// in-place personalization, with quality gating and degraded-mode
/// serving throughout.
#[derive(Debug, Clone)]
pub struct ClearDeployment {
    bundle: ClearBundle,
    policy: ServingPolicy,
    users: BTreeMap<String, UserState>,
    /// Good-quality maps accumulated for users whose onboarding is still
    /// deferred by the quality guardrail.
    pending: BTreeMap<String, Vec<FeatureMap>>,
    /// Reused execution state for serving: the bundle's networks stay
    /// immutable, and steady-state inference allocates no per-window
    /// activation tensors.
    ws: Workspace,
}

impl ClearDeployment {
    /// Starts a deployment from a cloud bundle with the default
    /// [`ServingPolicy`].
    pub fn new(bundle: ClearBundle) -> Self {
        Self::with_policy(bundle, ServingPolicy::default())
    }

    /// Starts a deployment with an explicit serving policy.
    pub fn with_policy(bundle: ClearBundle, policy: ServingPolicy) -> Self {
        Self {
            bundle,
            policy,
            users: BTreeMap::new(),
            pending: BTreeMap::new(),
            ws: Workspace::new(),
        }
    }

    /// The underlying bundle.
    pub fn bundle(&self) -> &ClearBundle {
        &self.bundle
    }

    /// The serving policy in force.
    pub fn policy(&self) -> &ServingPolicy {
        &self.policy
    }

    /// Replaces the serving policy (e.g. to loosen abstention floors for
    /// an offline batch pass).
    pub fn set_policy(&mut self, policy: ServingPolicy) {
        self.policy = policy;
    }

    /// Users currently onboarded.
    pub fn user_ids(&self) -> Vec<&str> {
        self.users.keys().map(String::as_str).collect()
    }

    /// Good-quality maps accumulated for a user whose onboarding is still
    /// deferred (0 for assigned or unknown users).
    pub fn pending_maps(&self, user: &str) -> usize {
        self.pending.get(user).map_or(0, Vec::len)
    }

    /// Windows quarantined so far for a user (0 for unknown users).
    pub fn quarantined_count(&self, user: &str) -> usize {
        self.users.get(user).map_or(0, |s| s.quarantined)
    }

    /// Onboards a new user from *unlabeled* feature maps (the cold-start
    /// path). Maps failing the quality floor are discarded; the rest
    /// accumulate until [`ServingPolicy::min_onboarding_maps`] good maps
    /// are available, at which point the user vector is computed and the
    /// closest cluster assigned by the sub-centroid rule. Until then the
    /// call returns [`Onboarding::Deferred`] and the user is *not*
    /// onboarded — retry with more data.
    ///
    /// Re-onboarding an existing user re-runs assignment and discards any
    /// personalization.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::BadInput`] when `maps` is empty.
    pub fn onboard(&mut self, user: &str, maps: &[FeatureMap]) -> Result<Onboarding, DeployError> {
        let _span = clear_obs::span(clear_obs::Stage::Onboard);
        if maps.is_empty() {
            return Err(DeployError::BadInput("onboarding needs at least one map"));
        }
        let buffer = self.pending.entry(user.to_string()).or_default();
        for map in maps {
            if assess_map(map).score >= self.policy.min_onboarding_quality {
                buffer.push(map.clone());
            }
        }
        let accumulated = buffer.len();
        if accumulated < self.policy.min_onboarding_maps.max(1) {
            clear_obs::counter_add(clear_obs::counters::ONBOARD_DEFERRED, 1);
            return Ok(Onboarding::Deferred {
                accumulated,
                required: self.policy.min_onboarding_maps.max(1),
            });
        }
        let good = self.pending.remove(user).unwrap_or_default();
        let (cluster, raw_vector) = serving::assign_cluster(&self.bundle, &good);
        self.users.insert(
            user.to_string(),
            UserState {
                cluster,
                // The same unlabeled data provides the personal baseline.
                baseline: raw_vector,
                personalized: None,
                quarantined: 0,
            },
        );
        clear_obs::counter_add(clear_obs::counters::ONBOARD_ASSIGNED, 1);
        Ok(Onboarding::Assigned { cluster })
    }

    /// The cluster a user was assigned to.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnknownUser`] if the user was never
    /// onboarded (deferred onboardings do not count).
    pub fn cluster_of(&self, user: &str) -> Result<usize, DeployError> {
        self.users
            .get(user)
            .map(|s| s.cluster)
            .ok_or_else(|| DeployError::UnknownUser(user.to_string()))
    }

    /// Whether the user has a personalized (fine-tuned) model.
    pub fn is_personalized(&self, user: &str) -> bool {
        self.users
            .get(user)
            .is_some_and(|s| s.personalized.is_some())
    }

    /// Classifies one feature map for a user through the quality gate,
    /// using their personalized model when available, the cluster model
    /// otherwise.
    ///
    /// Degraded-mode behavior:
    ///
    /// * every modality block dead → the window is **quarantined**:
    ///   `emotion: None`, `served_by: None`, nothing runs;
    /// * some blocks dead → they are imputed from cluster statistics
    ///   (when [`ServingPolicy::impute_missing`]) and inference proceeds
    ///   with a quality penalty;
    /// * post-inference, the prediction **abstains** (emotion `None`,
    ///   `served_by` kept) when quality or confidence fall below the
    ///   policy floors.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnknownUser`] for unknown users and
    /// [`DeployError::BadInput`] for maps whose shape does not match the
    /// bundle.
    pub fn predict(&mut self, user: &str, map: &FeatureMap) -> Result<Prediction, DeployError> {
        let mut predictions = self.predict_batch(user, std::slice::from_ref(map))?;
        Ok(predictions.pop().expect("one prediction per input map"))
    }

    /// Classifies a batch of feature maps for one user — semantically the
    /// same as calling [`ClearDeployment::predict`] once per map, in
    /// order, but the user lookup, shape validation and imputation
    /// centroid reconstruction are amortized across the whole batch, and
    /// every forward pass reuses one workspace, so the steady state
    /// allocates no per-window activation tensors.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnknownUser`] for unknown users and
    /// [`DeployError::BadInput`] when any map's shape does not match the
    /// bundle (shapes are validated up front: no predictions are served
    /// on error). An **empty** request is a free no-op: it returns an
    /// empty result without touching the quality gate, emitting spans or
    /// even looking the user up.
    pub fn predict_batch(
        &mut self,
        user: &str,
        maps: &[FeatureMap],
    ) -> Result<Vec<Prediction>, DeployError> {
        if maps.is_empty() {
            return Ok(Vec::new());
        }
        let _span = clear_obs::span(clear_obs::Stage::PredictBatch);
        let state = self
            .users
            .get(user)
            .ok_or_else(|| DeployError::UnknownUser(user.to_string()))?;
        let cluster = state.cluster;
        for map in maps {
            serving::check_shape(&self.bundle, map)?;
        }
        clear_obs::counter_add(clear_obs::counters::BATCHES, 1);
        clear_obs::counter_add(clear_obs::counters::BATCH_WINDOWS, maps.len() as u64);
        clear_obs::size_record(clear_obs::BATCH_SIZE_HISTOGRAM, maps.len() as u64);
        let centroid = serving::cluster_raw_centroid(&self.bundle, cluster);
        let Self {
            bundle,
            policy,
            users,
            ws,
            ..
        } = self;
        let state = users.get_mut(user).expect("user looked up above");
        let mut predictions = Vec::with_capacity(maps.len());
        for map in maps {
            let ctx = serving::ServeContext {
                bundle,
                policy,
                cluster,
                baseline: &state.baseline,
                centroid: &centroid,
                personalized: state.personalized.as_ref(),
                // The single-tenant deployment always serves the base
                // bundle exactly; cluster-generation rollout and tier
                // selection are multi-tenant engine concerns.
                cluster_model: None,
                tier: ServeTier::Exact,
                shadow: false,
            };
            let (prediction, quarantined) = serving::predict_one_gated(&ctx, map, ws)?;
            if quarantined {
                state.quarantined += 1;
            }
            predictions.push(prediction);
        }
        Ok(predictions)
    }

    /// Personalizes a user's model from labeled feature maps (the paper's
    /// fine-tuning stage), with rollback: when the labeled budget allows
    /// it, the trailing [`ServingPolicy::validation_fraction`] of the
    /// sequence is held out, and the fine-tuned checkpoint is adopted
    /// only if it does not degrade validation accuracy versus the cluster
    /// checkpoint. On rollback the user keeps being served by the cluster
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnknownUser`] for unknown users and
    /// [`DeployError::BadInput`] for an empty or unusable labeled set or
    /// maps whose shape does not match the bundle.
    pub fn personalize(
        &mut self,
        user: &str,
        labeled: &[(FeatureMap, Emotion)],
        config: &TrainConfig,
    ) -> Result<PersonalizeOutcome, DeployError> {
        let _span = clear_obs::span(clear_obs::Stage::Personalize);
        if labeled.is_empty() {
            return Err(DeployError::BadInput("personalization needs labeled maps"));
        }
        let cluster = self.cluster_of(user)?;
        let baseline = &self
            .users
            .get(user)
            .expect("cluster_of verified existence")
            .baseline;
        let (outcome, checkpoint) = serving::personalize_from(
            &self.bundle,
            &self.policy,
            cluster,
            baseline,
            labeled,
            config,
        )?;
        if let Some(net) = checkpoint {
            self.users
                .get_mut(user)
                .expect("cluster_of verified existence")
                .personalized = Some(net);
        }
        Ok(outcome)
    }

    /// Drops a user's state (e.g. account deletion — the privacy path),
    /// including any deferred onboarding buffer.
    ///
    /// Returns whether the user existed (onboarded or deferred).
    pub fn offboard(&mut self, user: &str) -> bool {
        let pending = self.pending.remove(user).is_some();
        self.users.remove(user).is_some() || pending
    }
}

/// Convenience: fits the cloud stage and wraps it as a deployment, the
/// one-call path from prepared data to a serving system.
pub fn deploy(
    data: &crate::dataset::PreparedCohort,
    subjects: &[clear_sim::SubjectId],
    config: &ClearConfig,
) -> ClearDeployment {
    let cloud = CloudTraining::fit(data, subjects, config);
    ClearDeployment::new(ClearBundle::from_cloud(&cloud))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PreparedCohort;
    use clear_features::catalog::modality_of;
    use clear_features::FEATURE_COUNT;

    fn deployment() -> (ClearConfig, PreparedCohort, ClearDeployment, Vec<usize>) {
        let config = ClearConfig::quick(17);
        let data = PreparedCohort::prepare(&config);
        let subjects = data.subject_ids();
        let (&newcomer, initial) = subjects.split_last().unwrap();
        let dep = deploy(&data, initial, &config);
        let indices = data.indices_of(newcomer);
        (config, data, dep, indices)
    }

    /// A policy that never abstains on confidence, so tests exercising
    /// the serving path deterministically receive a label on clean data.
    fn lenient(policy: ServingPolicy) -> ServingPolicy {
        ServingPolicy {
            min_confidence: 0.0,
            ..policy
        }
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let (_, _, dep, _) = deployment();
        let json = dep.bundle().to_json().unwrap();
        let restored = ClearBundle::from_json(&json).unwrap();
        assert_eq!(restored.cluster_count(), dep.bundle().cluster_count());
        assert_eq!(restored.windows, dep.bundle().windows);
        assert!(ClearBundle::from_json("{").is_err());
    }

    #[test]
    fn legacy_unsealed_bundle_json_still_loads() {
        let (_, _, dep, _) = deployment();
        let raw = serde_json::to_string(dep.bundle()).unwrap();
        let restored = ClearBundle::from_json(&raw).unwrap();
        assert_eq!(restored.cluster_count(), dep.bundle().cluster_count());
    }

    #[test]
    fn truncated_and_bit_flipped_bundles_are_typed_corruption_errors() {
        let (_, _, dep, _) = deployment();
        let sealed = dep.bundle().to_json().unwrap();
        match ClearBundle::from_json(&sealed[..sealed.len() - 7]) {
            Err(DeployError::CorruptArtifact(_)) => {}
            other => panic!("truncated bundle must be CorruptArtifact, got {other:?}"),
        }
        // Bundle JSON ends in '}'; flipping its low bit keeps the
        // artifact valid UTF-8 but breaks the checksum.
        let mut flipped = sealed.into_bytes();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let flipped = String::from_utf8(flipped).unwrap();
        match ClearBundle::from_json(&flipped) {
            Err(DeployError::CorruptArtifact(why)) => {
                assert!(why.contains("checksum"), "{why}");
            }
            other => panic!("bit-flipped bundle must be CorruptArtifact, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_weights_are_rejected_at_load() {
        // `1e39` is finite as f64, so it parses, then overflows to +inf
        // when narrowed to the f32 weight — exactly the corruption that
        // structural parsing alone cannot catch.
        fn poison_first_float(v: &mut serde_json::Value) -> bool {
            match v {
                serde_json::Value::Number(n) if n.is_f64() => {
                    *v = serde_json::json!(1e39);
                    true
                }
                serde_json::Value::Array(items) => items.iter_mut().any(|i| poison_first_float(i)),
                serde_json::Value::Object(map) => map.values_mut().any(|i| poison_first_float(i)),
                _ => false,
            }
        }
        let (_, _, dep, _) = deployment();
        let raw = serde_json::to_string(dep.bundle()).unwrap();
        let mut value: serde_json::Value = serde_json::from_str(&raw).unwrap();
        assert!(poison_first_float(value.get_mut("models").unwrap()));
        let poisoned = serde_json::to_string(&value).unwrap();
        match ClearBundle::from_json(&poisoned) {
            Err(DeployError::CorruptArtifact(why)) => {
                assert!(why.contains("non-finite"), "{why}");
            }
            other => panic!("non-finite weights must be CorruptArtifact, got {other:?}"),
        }
    }

    #[test]
    fn onboarding_and_prediction_flow() {
        let (_, data, mut dep, indices) = deployment();
        dep.set_policy(lenient(ServingPolicy::default()));
        let maps: Vec<FeatureMap> = indices[..2]
            .iter()
            .map(|&i| data.maps()[i].clone())
            .collect();
        let outcome = dep.onboard("alice", &maps).unwrap();
        let cluster = match outcome {
            Onboarding::Assigned { cluster } => cluster,
            Onboarding::Deferred { .. } => panic!("clean maps must assign immediately"),
        };
        assert!(cluster < dep.bundle().cluster_count());
        assert_eq!(dep.cluster_of("alice").unwrap(), cluster);
        assert!(!dep.is_personalized("alice"));
        let pred = dep.predict("alice", &data.maps()[indices[3]]).unwrap();
        assert!(matches!(
            pred.emotion,
            Some(Emotion::Fear) | Some(Emotion::NonFear)
        ));
        assert_eq!(pred.served_by, Some(ModelSource::Cluster(cluster)));
        assert!(pred.confidence >= 0.5 && pred.confidence <= 1.0);
        assert!(pred.quality > 0.5, "clean map quality {}", pred.quality);
        assert!(pred.imputed.is_empty());
        assert_eq!(dep.user_ids(), vec!["alice"]);
    }

    #[test]
    fn personalization_switches_serving_model() {
        let (config, data, mut dep, indices) = deployment();
        dep.set_policy(lenient(ServingPolicy::default()));
        let maps: Vec<FeatureMap> = indices[..1]
            .iter()
            .map(|&i| data.maps()[i].clone())
            .collect();
        dep.onboard("bob", &maps).unwrap();
        let labeled: Vec<(FeatureMap, Emotion)> = indices[1..4]
            .iter()
            .map(|&i| {
                let (m, e) = data.map_and_label(i);
                (m.clone(), e)
            })
            .collect();
        let outcome = dep.personalize("bob", &labeled, &config.finetune).unwrap();
        assert!(outcome.adopted);
        assert!(!outcome.validated, "3 maps are below the holdout floor");
        assert!(dep.is_personalized("bob"));
        // Prediction runs through the personalized path.
        let pred = dep.predict("bob", &data.maps()[indices[5]]).unwrap();
        assert_eq!(pred.served_by, Some(ModelSource::Personalized));
        // Offboarding erases the user.
        assert!(dep.offboard("bob"));
        assert!(!dep.offboard("bob"));
        assert!(dep.predict("bob", &data.maps()[indices[5]]).is_err());
    }

    #[test]
    fn unknown_users_and_bad_inputs_error() {
        let (config, data, mut dep, indices) = deployment();
        assert!(dep.cluster_of("nobody").is_err());
        assert!(dep.predict("nobody", &data.maps()[0]).is_err());
        assert!(dep.onboard("empty", &[]).is_err());
        let err = dep.personalize(
            "nobody",
            &[(data.maps()[indices[0]].clone(), Emotion::Fear)],
            &config.finetune,
        );
        assert!(err.is_err());
        let msg = dep.cluster_of("nobody").unwrap_err().to_string();
        assert!(msg.contains("nobody"));
    }

    #[test]
    fn wrong_window_count_is_bad_input_not_panic() {
        let (config, data, mut dep, indices) = deployment();
        let maps: Vec<FeatureMap> = vec![data.maps()[indices[0]].clone()];
        dep.onboard("dave", &maps).unwrap();
        // A map with a different number of windows than the bundle.
        let wrong = FeatureMap::from_columns(&vec![vec![0.5; FEATURE_COUNT]; 2]);
        assert!(wrong.window_count() != dep.bundle().windows);
        match dep.predict("dave", &wrong) {
            Err(DeployError::BadInput(_)) => {}
            other => panic!("expected BadInput, got {other:?}"),
        }
        match dep.personalize("dave", &[(wrong, Emotion::Fear)], &config.finetune) {
            Err(DeployError::BadInput(_)) => {}
            other => panic!("expected BadInput, got {other:?}"),
        }
    }

    #[test]
    fn garbage_windows_are_quarantined() {
        let (_, data, mut dep, indices) = deployment();
        let maps: Vec<FeatureMap> = vec![data.maps()[indices[0]].clone()];
        dep.onboard("erin", &maps).unwrap();
        let w = dep.bundle().windows;
        // All-NaN map: every modality block is dead.
        let nan_map = FeatureMap::from_columns(&vec![vec![f32::NAN; FEATURE_COUNT]; w]);
        let pred = dep.predict("erin", &nan_map).unwrap();
        assert!(pred.abstained());
        assert_eq!(pred.served_by, None);
        assert_eq!(pred.confidence, 0.0);
        assert_eq!(dep.quarantined_count("erin"), 1);
        // Constant map: every row flat — equally dead.
        let flat_map = FeatureMap::from_columns(&vec![vec![0.25; FEATURE_COUNT]; w]);
        let pred = dep.predict("erin", &flat_map).unwrap();
        assert!(pred.abstained());
        assert_eq!(dep.quarantined_count("erin"), 2);
    }

    #[test]
    fn low_quality_onboarding_is_deferred_until_retry() {
        let (_, data, mut dep, indices) = deployment();
        let w = dep.bundle().windows;
        let junk = FeatureMap::from_columns(&vec![vec![0.25; FEATURE_COUNT]; w]);
        let outcome = dep.onboard("frank", &[junk.clone()]).unwrap();
        assert_eq!(
            outcome,
            Onboarding::Deferred {
                accumulated: 0,
                required: 1
            }
        );
        assert!(dep.cluster_of("frank").is_err(), "not onboarded yet");
        // Retry with a good map completes the deferred onboarding.
        let good = data.maps()[indices[0]].clone();
        match dep.onboard("frank", &[good]).unwrap() {
            Onboarding::Assigned { cluster } => {
                assert!(cluster < dep.bundle().cluster_count());
            }
            Onboarding::Deferred { .. } => panic!("good map must complete onboarding"),
        }
        assert!(dep.cluster_of("frank").is_ok());
        assert_eq!(dep.pending_maps("frank"), 0);
    }

    #[test]
    fn reonboarding_resets_personalization() {
        let (config, data, mut dep, indices) = deployment();
        let maps: Vec<FeatureMap> = vec![data.maps()[indices[0]].clone()];
        dep.onboard("carol", &maps).unwrap();
        let labeled = vec![(data.maps()[indices[1]].clone(), Emotion::NonFear)];
        dep.personalize("carol", &labeled, &config.finetune)
            .unwrap();
        assert!(dep.is_personalized("carol"));
        dep.onboard("carol", &maps).unwrap();
        assert!(!dep.is_personalized("carol"));
    }

    #[test]
    fn predict_batch_matches_sequential_predict() {
        let (_, data, mut dep, indices) = deployment();
        dep.set_policy(lenient(ServingPolicy::default()));
        let maps: Vec<FeatureMap> = vec![data.maps()[indices[0]].clone()];
        dep.onboard("hana", &maps).unwrap();
        let w = dep.bundle().windows;
        let mut batch: Vec<FeatureMap> = indices[1..4]
            .iter()
            .map(|&i| data.maps()[i].clone())
            .collect();
        // Include a quarantined window so counter bookkeeping is compared
        // too.
        batch.push(FeatureMap::from_columns(&vec![
            vec![f32::NAN; FEATURE_COUNT];
            w
        ]));
        let mut sequential = dep.clone();
        let one_by_one: Vec<Prediction> = batch
            .iter()
            .map(|m| sequential.predict("hana", m).unwrap())
            .collect();
        let batched = dep.predict_batch("hana", &batch).unwrap();
        assert_eq!(batched, one_by_one);
        assert_eq!(
            dep.quarantined_count("hana"),
            sequential.quarantined_count("hana")
        );
        assert!(dep.predict_batch("nobody", &batch).is_err());
    }

    #[test]
    fn empty_predict_batch_is_a_free_no_op() {
        let (_, data, mut dep, indices) = deployment();
        let maps: Vec<FeatureMap> = vec![data.maps()[indices[0]].clone()];
        dep.onboard("ivy", &maps).unwrap();
        assert_eq!(dep.predict_batch("ivy", &[]).unwrap(), Vec::new());
        // The guard fires before the user lookup, so an empty request is
        // a no-op even for users that were never onboarded (a non-empty
        // request for them still errors, see above).
        assert_eq!(dep.predict_batch("nobody", &[]).unwrap(), Vec::new());
    }

    #[test]
    fn missing_modality_is_imputed_and_served() {
        let (_, data, mut dep, indices) = deployment();
        dep.set_policy(lenient(ServingPolicy::default()));
        let maps: Vec<FeatureMap> = vec![data.maps()[indices[0]].clone()];
        dep.onboard("gina", &maps).unwrap();
        // Kill the BVP block of a clean map: constant values everywhere.
        let clean = &data.maps()[indices[2]];
        let w = clean.window_count();
        let columns: Vec<Vec<f32>> = (0..w)
            .map(|c| {
                (0..FEATURE_COUNT)
                    .map(|f| {
                        if matches!(modality_of(f), Modality::Bvp) {
                            0.125
                        } else {
                            clean.get(f, c)
                        }
                    })
                    .collect()
            })
            .collect();
        let degraded = FeatureMap::from_columns(&columns);
        let pred = dep.predict("gina", &degraded).unwrap();
        assert!(pred.imputed.contains(&Modality::Bvp), "BVP must be imputed");
        assert!(pred.emotion.is_some(), "degraded but servable");
        assert!(
            pred.quality < 0.9,
            "quality must reflect the dead block, got {}",
            pred.quality
        );
        assert!(pred.quality >= dep.policy().min_quality);
    }
}
