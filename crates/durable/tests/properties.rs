//! Property-based hardening of the durable byte formats: for *arbitrary*
//! payloads, truncation points and bit flips, the WAL frame codec and
//! the artifact envelope never panic, never mis-decode, and classify
//! damage correctly — truncation is a torn tail (expected crash damage),
//! interior mutation is a typed corruption error.

use clear_durable::envelope;
use clear_durable::frame::{decode_frames, encode_frame_into, WalTail, FRAME_HEADER_BYTES};
use clear_durable::DurableError;
use proptest::prelude::*;

fn encode_all(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in payloads {
        encode_frame_into(&mut buf, p);
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Any payload sequence round-trips through encode → decode with a
    /// clean tail and every byte intact.
    #[test]
    fn frames_round_trip(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
    ) {
        let buf = encode_all(&payloads);
        prop_assert_eq!(buf.len(), payloads.iter().map(|p| FRAME_HEADER_BYTES + p.len()).sum::<usize>());
        let (decoded, tail) = decode_frames(&buf).expect("clean log decodes");
        prop_assert_eq!(tail, WalTail::Clean);
        let decoded: Vec<Vec<u8>> = decoded.into_iter().map(<[u8]>::to_vec).collect();
        prop_assert_eq!(decoded, payloads);
    }

    /// Truncating an encoded log at *any* byte never errors and never
    /// invents data: the decode yields a prefix of the original payload
    /// sequence, and a reported tear points at the exact end of that
    /// prefix, so truncating there re-decodes cleanly.
    #[test]
    fn any_truncation_decodes_to_a_clean_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let buf = encode_all(&payloads);
        let cut = cut.index(buf.len() + 1); // 0..=len: includes the no-op cut
        let (decoded, tail) = decode_frames(&buf[..cut])
            .expect("truncation is torn-tail damage, never a decode error");
        prop_assert!(decoded.len() <= payloads.len());
        for (d, p) in decoded.iter().zip(&payloads) {
            prop_assert_eq!(*d, p.as_slice());
        }
        match tail {
            WalTail::Clean => {}
            WalTail::Torn { valid_len } => {
                prop_assert!(valid_len <= cut);
                let (again, tail2) = decode_frames(&buf[..valid_len])
                    .expect("the valid prefix decodes");
                prop_assert_eq!(tail2, WalTail::Clean);
                prop_assert_eq!(again.len(), decoded.len());
            }
        }
    }

    /// Flipping any byte of an encoded log never panics: the decode
    /// either succeeds (the flip landed where reframing still checksums,
    /// e.g. in a tail the decoder tears off) or fails with the typed
    /// corruption error — never any other failure mode.
    #[test]
    fn any_bit_flip_never_panics_and_errors_are_typed(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..8),
        at in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let mut buf = encode_all(&payloads);
        let at = at.index(buf.len());
        buf[at] ^= mask;
        match decode_frames(&buf) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                matches!(e, DurableError::CorruptArtifact { artifact: "wal", .. }),
                "unexpected error shape: {:?}", e
            ),
        }
    }

    /// A flipped payload byte in a *complete* frame is always caught:
    /// CRC-32 detects every burst shorter than its width, so single-byte
    /// damage to framed data can never decode as valid.
    #[test]
    fn payload_mutation_in_a_complete_frame_is_always_caught(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        at in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, &payload);
        let at = FRAME_HEADER_BYTES + at.index(payload.len());
        buf[at] ^= mask;
        prop_assert!(matches!(
            decode_frames(&buf),
            Err(DurableError::CorruptArtifact { artifact: "wal", .. })
        ));
    }

    /// Sealed envelopes round-trip, reject every strict truncation, and
    /// never return altered bytes under a single-byte mutation.
    #[test]
    fn envelope_survives_truncation_and_mutation(
        payload in prop::collection::vec(any::<u8>(), 0..96),
        cut in any::<prop::sample::Index>(),
        at in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let sealed = envelope::seal("snapshot", &payload);
        prop_assert_eq!(
            envelope::open("snapshot", &sealed).expect("sealed artifact opens"),
            payload.as_slice()
        );
        prop_assert!(matches!(
            envelope::open("bundle", &sealed),
            Err(DurableError::CorruptArtifact { artifact: "bundle", .. })
        ));

        let cut = cut.index(sealed.len()); // strictly shorter
        prop_assert!(envelope::open("snapshot", &sealed[..cut]).is_err());

        let mut mutated = sealed.clone();
        let at = at.index(mutated.len());
        mutated[at] ^= mask;
        match envelope::open("snapshot", &mutated) {
            // A header-region flip can leave the payload slice reachable
            // and untouched; anything else must be a typed error.
            Ok(got) => prop_assert_eq!(got, payload.as_slice()),
            Err(DurableError::CorruptArtifact { artifact: "snapshot", .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {:?}", e),
        }
    }
}
