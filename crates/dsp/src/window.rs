//! Window (taper) functions for spectral estimation.
//!
//! Welch PSD estimation and the frequency-domain features of the CLEAR
//! extractor taper each segment before the FFT to control spectral leakage.

/// The supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowKind {
    /// All-ones window (no tapering).
    Rectangular,
    /// Hann window, the default for Welch estimation.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

impl WindowKind {
    /// Generates the window coefficients of length `n`.
    ///
    /// An `n` of zero yields an empty vector; `n == 1` yields `[1.0]` for
    /// every kind (the symmetric window degenerate case).
    ///
    /// ```
    /// use clear_dsp::window::WindowKind;
    /// let w = WindowKind::Hann.coefficients(8);
    /// assert_eq!(w.len(), 8);
    /// assert!(w[0] < 1e-6); // Hann tapers to zero at the edges
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f32> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let denom = (n - 1) as f32;
        (0..n)
            .map(|i| {
                let t = i as f32 / denom;
                match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * (2.0 * std::f32::consts::PI * t).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (2.0 * std::f32::consts::PI * t).cos(),
                    WindowKind::Blackman => {
                        0.42 - 0.5 * (2.0 * std::f32::consts::PI * t).cos()
                            + 0.08 * (4.0 * std::f32::consts::PI * t).cos()
                    }
                }
            })
            .collect()
    }

    /// Sum of squared coefficients, the normalization constant used by Welch
    /// PSD estimation.
    pub fn power_normalization(self, n: usize) -> f32 {
        self.coefficients(n).iter().map(|w| w * w).sum()
    }
}

impl std::fmt::Display for WindowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            WindowKind::Rectangular => "rectangular",
            WindowKind::Hann => "hann",
            WindowKind::Hamming => "hamming",
            WindowKind::Blackman => "blackman",
        };
        f.write_str(name)
    }
}

/// Multiplies `x` element-wise by the window coefficients, returning the
/// tapered copy.
///
/// # Panics
///
/// Panics if `x.len() != w.len()`; the caller generates `w` from `x.len()`.
pub fn apply(x: &[f32], w: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), w.len(), "window length must match signal length");
    x.iter().zip(w).map(|(a, b)| a * b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_windows_have_requested_length() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            assert_eq!(kind.coefficients(0).len(), 0);
            assert_eq!(kind.coefficients(1), vec![1.0]);
            assert_eq!(kind.coefficients(17).len(), 17);
        }
    }

    #[test]
    fn windows_are_symmetric() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.coefficients(33);
            for i in 0..w.len() {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-6,
                    "{kind} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn windows_peak_at_center_with_unit_max() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.coefficients(65);
            let peak = w[32];
            assert!((peak - 1.0).abs() < 1e-5, "{kind} center {peak}");
            assert!(w.iter().all(|&v| v <= peak + 1e-6));
            assert!(w.iter().all(|&v| v >= -1e-6));
        }
    }

    #[test]
    fn hann_edges_are_zero_hamming_edges_are_not() {
        let hann = WindowKind::Hann.coefficients(16);
        let hamming = WindowKind::Hamming.coefficients(16);
        assert!(hann[0].abs() < 1e-6);
        assert!((hamming[0] - 0.08).abs() < 1e-5);
    }

    #[test]
    fn rectangular_power_normalization_equals_n() {
        assert_eq!(WindowKind::Rectangular.power_normalization(40), 40.0);
        let hann_norm = WindowKind::Hann.power_normalization(40);
        assert!(hann_norm > 0.0 && hann_norm < 40.0);
    }

    #[test]
    fn apply_tapers_signal() {
        let x = vec![2.0f32; 8];
        let w = WindowKind::Hann.coefficients(8);
        let y = apply(&x, &w);
        assert!(y[0].abs() < 1e-5);
        assert!(y[4] > 1.5);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn apply_length_mismatch_panics() {
        apply(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(WindowKind::Hann.to_string(), "hann");
        assert_eq!(WindowKind::default(), WindowKind::Hann);
    }
}
