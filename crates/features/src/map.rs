//! Feature-map assembly, normalization and user-level aggregation.
//!
//! A [`FeatureMap`] is the paper's `M ∈ R^{F×W}` matrix: one column of 123
//! features per sliding window of a stimulus recording. A [`Normalizer`]
//! carries per-feature z-score statistics fit on training data only (so
//! evaluation never leaks test statistics). User-level vectors for the
//! clustering stage are the mean feature column across all of a user's
//! windows — the `D ∈ R^{F×N}` matrix of paper §III-A2.

use clear_sim::{Recording, SignalConfig};
use serde::{Deserialize, Serialize};

use crate::catalog::FEATURE_COUNT;
use crate::extract::{extract_window, WindowConfig};

/// A 2D feature map `F × W`: `F = 123` features (rows) by `W` windows
/// (columns), stored row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMap {
    windows: usize,
    data: Vec<f32>,
}

impl FeatureMap {
    /// Builds a map from per-window feature vectors (each of length 123).
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or any column length differs from
    /// [`FEATURE_COUNT`].
    pub fn from_columns(columns: &[Vec<f32>]) -> Self {
        assert!(
            !columns.is_empty(),
            "a feature map needs at least one window"
        );
        for c in columns {
            assert_eq!(
                c.len(),
                FEATURE_COUNT,
                "feature column must have 123 entries"
            );
        }
        let windows = columns.len();
        let mut data = vec![0.0f32; FEATURE_COUNT * windows];
        for (w, col) in columns.iter().enumerate() {
            for (f, &v) in col.iter().enumerate() {
                data[f * windows + w] = v;
            }
        }
        Self { windows, data }
    }

    /// Number of feature rows (always 123).
    pub fn feature_count(&self) -> usize {
        FEATURE_COUNT
    }

    /// Number of window columns.
    pub fn window_count(&self) -> usize {
        self.windows
    }

    /// Value of feature `f` in window `w`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn get(&self, f: usize, w: usize) -> f32 {
        assert!(f < FEATURE_COUNT && w < self.windows, "index out of range");
        self.data[f * self.windows + w]
    }

    /// Row-major raw data (`f * window_count + w` indexing).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// One feature's trajectory across windows.
    pub fn row(&self, f: usize) -> &[f32] {
        assert!(f < FEATURE_COUNT, "feature index out of range");
        &self.data[f * self.windows..(f + 1) * self.windows]
    }

    /// Mean over windows: the 123-vector used for clustering.
    pub fn mean_column(&self) -> Vec<f32> {
        (0..FEATURE_COUNT)
            .map(|f| {
                let row = self.row(f);
                row.iter().sum::<f32>() / row.len() as f32
            })
            .collect()
    }

    /// Applies a fitted normalizer in place.
    pub fn normalize(&mut self, normalizer: &Normalizer) {
        let w = self.windows;
        for f in 0..FEATURE_COUNT {
            let (m, s) = (normalizer.mean[f], normalizer.std[f]);
            for x in &mut self.data[f * w..(f + 1) * w] {
                *x = (*x - m) / s;
            }
        }
    }
}

/// Per-feature z-score statistics, fit on training maps only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fits mean/std per feature over all windows of all `maps`.
    ///
    /// Features with (near-)zero variance get `std = 1` so normalization
    /// never divides by zero.
    ///
    /// # Panics
    ///
    /// Panics if `maps` is empty.
    pub fn fit(maps: &[&FeatureMap]) -> Self {
        assert!(!maps.is_empty(), "cannot fit a normalizer on zero maps");
        let mut mean = vec![0.0f64; FEATURE_COUNT];
        let mut count = 0usize;
        for m in maps {
            for f in 0..FEATURE_COUNT {
                for &v in m.row(f) {
                    mean[f] += v as f64;
                }
            }
            count += m.window_count();
        }
        for m in &mut mean {
            *m /= count as f64;
        }
        let mut var = vec![0.0f64; FEATURE_COUNT];
        for m in maps {
            for f in 0..FEATURE_COUNT {
                for &v in m.row(f) {
                    let d = v as f64 - mean[f];
                    var[f] += d * d;
                }
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&v| {
                let s = (v / count as f64).sqrt() as f32;
                if s < 1e-6 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self {
            mean: mean.into_iter().map(|v| v as f32).collect(),
            std,
        }
    }

    /// Normalizes a bare feature vector (e.g. a user-level mean column).
    pub fn apply_vector(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), FEATURE_COUNT, "vector must have 123 entries");
        v.iter()
            .enumerate()
            .map(|(f, &x)| (x - self.mean[f]) / self.std[f])
            .collect()
    }

    /// The fitted per-feature means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// The fitted per-feature standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }
}

/// Stateful extractor binding signal and window configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureExtractor {
    signal: SignalConfig,
    window: WindowConfig,
}

impl FeatureExtractor {
    /// Creates an extractor for recordings produced under `signal`,
    /// windowed per `window`.
    pub fn new(signal: SignalConfig, window: WindowConfig) -> Self {
        Self { signal, window }
    }

    /// The window configuration.
    pub fn window_config(&self) -> WindowConfig {
        self.window
    }

    /// The signal configuration.
    pub fn signal_config(&self) -> SignalConfig {
        self.signal
    }

    /// Extracts the full `123 × W` feature map of one recording.
    ///
    /// # Panics
    ///
    /// Panics if the recording is shorter than one window.
    pub fn feature_map(&self, recording: &Recording) -> FeatureMap {
        let _span = clear_obs::span(clear_obs::Stage::FeatureMap);
        let duration = recording.bvp.len() as f32 / self.signal.fs_bvp;
        let count = self.window.window_count(duration);
        assert!(
            count > 0,
            "recording shorter than one window ({duration} s < {} s)",
            self.window.window_secs
        );
        let mut columns = Vec::with_capacity(count);
        for w in 0..count {
            let t0 = w as f32 * self.window.step_secs;
            let t1 = t0 + self.window.window_secs;
            let slice = |x: &[f32], fs: f32| -> Vec<f32> {
                let a = (t0 * fs) as usize;
                let b = ((t1 * fs) as usize).min(x.len());
                x[a.min(b)..b].to_vec()
            };
            let bvp = slice(&recording.bvp, self.signal.fs_bvp);
            let gsr = slice(&recording.gsr, self.signal.fs_gsr);
            let skt = slice(&recording.skt, self.signal.fs_skt);
            columns.push(extract_window(&bvp, &gsr, &skt, &self.signal));
        }
        FeatureMap::from_columns(&columns)
    }

    /// Extracts maps for many recordings.
    pub fn feature_maps<'a, I>(&self, recordings: I) -> Vec<FeatureMap>
    where
        I: IntoIterator<Item = &'a Recording>,
    {
        recordings
            .into_iter()
            .map(|r| self.feature_map(r))
            .collect()
    }
}

/// Mean 123-vector over a set of feature maps — one user's row of the
/// clustering matrix `D`.
///
/// # Panics
///
/// Panics if `maps` is empty.
pub fn user_vector(maps: &[&FeatureMap]) -> Vec<f32> {
    assert!(!maps.is_empty(), "user vector needs at least one map");
    let mut acc = vec![0.0f32; FEATURE_COUNT];
    for m in maps {
        for (a, v) in acc.iter_mut().zip(m.mean_column()) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= maps.len() as f32;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_sim::{Cohort, CohortConfig};

    fn small_cohort() -> Cohort {
        Cohort::generate(&CohortConfig::small(4))
    }

    #[test]
    fn feature_map_shape_and_layout() {
        let cols = vec![vec![1.0; FEATURE_COUNT], vec![2.0; FEATURE_COUNT]];
        let m = FeatureMap::from_columns(&cols);
        assert_eq!(m.feature_count(), FEATURE_COUNT);
        assert_eq!(m.window_count(), 2);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(5), &[1.0, 2.0]);
        assert_eq!(m.mean_column()[7], 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn empty_map_panics() {
        let _ = FeatureMap::from_columns(&[]);
    }

    #[test]
    #[should_panic(expected = "123 entries")]
    fn wrong_column_length_panics() {
        let _ = FeatureMap::from_columns(&[vec![0.0; 3]]);
    }

    #[test]
    fn extractor_produces_expected_window_count() {
        let cohort = small_cohort();
        let ex = FeatureExtractor::new(cohort.config().signal, WindowConfig::default());
        let map = ex.feature_map(&cohort.recordings()[0]);
        // 30 s stimulus, 12 s windows stepping 6 s → 4 windows.
        assert_eq!(map.window_count(), 4);
        assert!(map.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn normalizer_zero_means_unit_stds() {
        let cohort = small_cohort();
        let ex = FeatureExtractor::new(cohort.config().signal, WindowConfig::default());
        let maps = ex.feature_maps(cohort.recordings().iter().take(8));
        let refs: Vec<&FeatureMap> = maps.iter().collect();
        let norm = Normalizer::fit(&refs);
        let mut normalized = maps.clone();
        for m in &mut normalized {
            m.normalize(&norm);
        }
        // Per feature: mean ≈ 0, std ≈ 1 (or exactly 0 for constant rows).
        for fidx in 0..FEATURE_COUNT {
            let mut vals = Vec::new();
            for m in &normalized {
                vals.extend_from_slice(m.row(fidx));
            }
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-2, "feature {fidx} mean {mean}");
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(var < 1.6, "feature {fidx} var {var}");
        }
    }

    #[test]
    fn normalizer_apply_vector_matches_map_normalization() {
        let cohort = small_cohort();
        let ex = FeatureExtractor::new(cohort.config().signal, WindowConfig::default());
        let maps = ex.feature_maps(cohort.recordings().iter().take(4));
        let refs: Vec<&FeatureMap> = maps.iter().collect();
        let norm = Normalizer::fit(&refs);
        let vec_before = maps[0].mean_column();
        let via_vector = norm.apply_vector(&vec_before);
        let mut m = maps[0].clone();
        m.normalize(&norm);
        let via_map = m.mean_column();
        for (a, b) in via_vector.iter().zip(&via_map) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn user_vector_averages_maps() {
        let a = FeatureMap::from_columns(&[vec![1.0; FEATURE_COUNT]]);
        let b = FeatureMap::from_columns(&[vec![3.0; FEATURE_COUNT]]);
        let v = user_vector(&[&a, &b]);
        assert!(v.iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn feature_maps_differ_between_fear_and_calm() {
        // Aggregate discriminability smoke test: the fear/non-fear mean
        // columns must differ on at least some features.
        let cohort = small_cohort();
        let ex = FeatureExtractor::new(cohort.config().signal, WindowConfig::default());
        let mut fear = vec![0.0f32; FEATURE_COUNT];
        let mut calm = vec![0.0f32; FEATURE_COUNT];
        let (mut nf, mut nc) = (0, 0);
        for r in cohort.recordings() {
            let col = ex.feature_map(r).mean_column();
            match r.emotion {
                clear_sim::Emotion::Fear => {
                    for (a, v) in fear.iter_mut().zip(&col) {
                        *a += v;
                    }
                    nf += 1;
                }
                clear_sim::Emotion::NonFear => {
                    for (a, v) in calm.iter_mut().zip(&col) {
                        *a += v;
                    }
                    nc += 1;
                }
            }
        }
        let hr_idx = crate::catalog::index_of("hrv_mean_hr").unwrap();
        let fear_hr = fear[hr_idx] / nf as f32;
        let calm_hr = calm[hr_idx] / nc as f32;
        assert!(
            fear_hr > calm_hr + 1.0,
            "fear mean hr {fear_hr} vs calm {calm_hr}"
        );
    }
}
