//! Robustness curve: accuracy / abstention / availability vs. corruption.
//!
//! Sweeps [`ArtifactConfig::severity`] over a newcomer's evaluation
//! recordings and serves them through the quality-gated
//! [`ClearDeployment`], then stresses the edge serving loop with
//! transient faults through [`ResilientDeployment`]. Shows that under
//! growing corruption the system degrades *gracefully* — accuracy on
//! served windows erodes slowly while abstention absorbs the damage —
//! and that bounded retry keeps availability ≥ 99 % at a 10 % transient
//! fault rate.
//!
//! ```text
//! cargo run --release -p clear-bench --bin robustness_curve -- --quick --json robustness.json
//! ```

use clear_bench::{cli_from_args, maybe_write_json, print_progress};
use clear_core::deployment::{deploy, Prediction};
use clear_core::PreparedCohort;
use clear_edge::fault::{FaultConfig, ResilientDeployment, RetryPolicy};
use clear_edge::{Device, EdgeDeployment};
use clear_features::{FeatureExtractor, FEATURE_COUNT};
use clear_nn::tensor::Tensor;
use clear_sim::artifacts::{corrupt, ArtifactConfig};
use serde::Serialize;

/// One severity level of the sweep.
#[derive(Debug, Clone, Serialize)]
struct SeverityPoint {
    severity: f32,
    windows: usize,
    served: usize,
    quarantined: usize,
    abstained: usize,
    imputed: usize,
    accuracy_on_served: f32,
    abstention_rate: f32,
    mean_quality: f32,
}

/// Edge availability block of the report.
#[derive(Debug, Clone, Serialize)]
struct AvailabilityPoint {
    transient_rate: f32,
    requests: usize,
    served: usize,
    availability: f32,
    faults_absorbed: usize,
}

#[derive(Debug, Clone, Serialize)]
struct RobustnessReport {
    curve: Vec<SeverityPoint>,
    edge: Vec<AvailabilityPoint>,
}

fn main() {
    let cli = cli_from_args();
    let config = &cli.config;

    eprintln!("preparing cohort and training cloud stage...");
    let data = PreparedCohort::prepare(config);
    let subjects = data.subject_ids();
    let (&newcomer, initial) = subjects.split_last().expect("cohort has subjects");
    let mut deployment = deploy(&data, initial, config);

    // Onboard the newcomer from their first (clean) unlabeled recordings.
    let indices = data.indices_of(newcomer);
    assert!(indices.len() >= 3, "newcomer needs onboarding + eval data");
    let onboard_n = 2.min(indices.len() - 1);
    let onboard_maps: Vec<_> = indices[..onboard_n]
        .iter()
        .map(|&i| data.maps()[i].clone())
        .collect();
    deployment
        .onboard("newcomer", &onboard_maps)
        .expect("clean onboarding succeeds");
    let cluster = deployment
        .cluster_of("newcomer")
        .expect("newcomer was assigned");
    eprintln!("newcomer assigned to cluster {cluster}");

    let eval = &indices[onboard_n..];
    let extractor = FeatureExtractor::new(config.cohort.signal, config.window);
    let signal = config.cohort.signal;
    let severities = [0.0f32, 0.25, 0.5, 0.75, 1.0];

    let mut curve = Vec::new();
    for (si, &severity) in severities.iter().enumerate() {
        let artifacts = ArtifactConfig::severity(severity, 0xC0FFEE + si as u64);
        let mut windows = 0usize;
        let mut served = 0usize;
        let mut correct = 0usize;
        let mut quarantined = 0usize;
        let mut abstained = 0usize;
        let mut imputed = 0usize;
        let mut quality_sum = 0.0f32;
        for (done, &i) in eval.iter().enumerate() {
            let recording = &data.cohort().recordings()[i];
            let corrupted = corrupt(
                recording,
                signal.fs_bvp,
                signal.fs_gsr,
                signal.fs_skt,
                &artifacts,
            );
            let map = extractor.feature_map(&corrupted);
            let prediction: Prediction = deployment
                .predict("newcomer", &map)
                .expect("well-shaped map never errors");
            windows += 1;
            quality_sum += prediction.quality;
            if !prediction.imputed.is_empty() {
                imputed += 1;
            }
            match (prediction.emotion, prediction.served_by) {
                (Some(emotion), _) => {
                    served += 1;
                    if emotion == recording.emotion {
                        correct += 1;
                    }
                }
                (None, None) => quarantined += 1,
                (None, Some(_)) => abstained += 1,
            }
            print_progress(&format!("severity {severity:.2}"), done + 1, eval.len());
        }
        curve.push(SeverityPoint {
            severity,
            windows,
            served,
            quarantined,
            abstained,
            imputed,
            accuracy_on_served: if served > 0 {
                correct as f32 / served as f32
            } else {
                f32::NAN
            },
            abstention_rate: if windows > 0 {
                (quarantined + abstained) as f32 / windows as f32
            } else {
                0.0
            },
            mean_quality: if windows > 0 {
                quality_sum / windows as f32
            } else {
                0.0
            },
        });
    }

    // Edge availability under transient faults: serve the newcomer's eval
    // maps through a fault-injected edge deployment with bounded retry.
    eprintln!("stress-testing edge serving loop...");
    let windows = deployment.bundle().windows;
    let model = deployment.bundle().models[cluster].clone();
    let shape = [1usize, FEATURE_COUNT, windows];
    let mut edge = Vec::new();
    for (fi, &rate) in [0.0f32, 0.05, 0.10, 0.20].iter().enumerate() {
        let primary = EdgeDeployment::new(model.clone(), Device::CoralTpu, &shape);
        let fallback = EdgeDeployment::new(model.clone(), Device::CoralTpu, &shape);
        let mut resilient = ResilientDeployment::new(
            primary,
            FaultConfig::transient(rate, 0xFA157 + fi as u64),
            RetryPolicy::default(),
        )
        .with_fallback(fallback);
        let rounds = 200usize.div_ceil(eval.len().max(1));
        for _round in 0..rounds {
            for &i in eval {
                let map = &data.maps()[i];
                let x = Tensor::from_vec(&shape, map.as_slice().to_vec());
                let _ = resilient.serve(&x);
            }
        }
        let stats = *resilient.stats();
        edge.push(AvailabilityPoint {
            transient_rate: rate,
            requests: stats.requests,
            served: stats.served,
            availability: stats.availability(),
            faults_absorbed: stats.faults_absorbed,
        });
    }

    println!("\nRobustness curve (quality-gated serving under corruption)");
    println!("severity  windows  served  quarantined  abstained  imputed  acc(served)  abstention  quality");
    for p in &curve {
        println!(
            "{:>8.2}  {:>7}  {:>6}  {:>11}  {:>9}  {:>7}  {:>11.3}  {:>10.3}  {:>7.3}",
            p.severity,
            p.windows,
            p.served,
            p.quarantined,
            p.abstained,
            p.imputed,
            p.accuracy_on_served,
            p.abstention_rate,
            p.mean_quality,
        );
    }
    println!("\nEdge availability under transient faults (bounded retry, max 3)");
    println!("rate   requests  served  availability  faults_absorbed");
    for p in &edge {
        println!(
            "{:>4.2}  {:>8}  {:>6}  {:>12.4}  {:>15}",
            p.transient_rate, p.requests, p.served, p.availability, p.faults_absorbed,
        );
    }

    let report = RobustnessReport { curve, edge };
    maybe_write_json(&cli, &report);
}
