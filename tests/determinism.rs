//! Reproducibility: every stage of the system is a pure function of its
//! seed. Scientific results that cannot be regenerated bit-for-bit are
//! not results; these tests pin that property across crate boundaries.

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::evaluation::{clear_folds, clear_folds_parallel};
use clear::core::pipeline::CloudTraining;
use clear::nn::backend::BackendKind;
use clear::nn::network::cnn_lstm;
use clear::nn::tensor::Tensor;
use clear::nn::workspace::Workspace;
use clear::sim::{Cohort, CohortConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn cohort_and_features_are_seed_deterministic() {
    let config = ClearConfig::quick(77);
    let a = PreparedCohort::prepare(&config);
    let b = PreparedCohort::prepare(&config);
    assert_eq!(a.maps().len(), b.maps().len());
    for (ma, mb) in a.maps().iter().zip(b.maps()) {
        assert_eq!(ma.as_slice(), mb.as_slice());
    }
}

#[test]
fn different_seeds_give_different_cohorts() {
    let a = Cohort::generate(&CohortConfig::small(1));
    let b = Cohort::generate(&CohortConfig::small(2));
    assert_ne!(a.recordings()[0].bvp, b.recordings()[0].bvp);
}

#[test]
fn cloud_training_is_deterministic() {
    let config = ClearConfig::quick(55);
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let a = CloudTraining::fit(&data, &subjects, &config);
    let b = CloudTraining::fit(&data, &subjects, &config);
    for s in &subjects {
        assert_eq!(a.cluster_of(*s), b.cluster_of(*s));
    }
    for c in 0..a.cluster_count() {
        assert_eq!(
            a.model(c).parameters_flat(),
            b.model(c).parameters_flat(),
            "cluster {c} weights diverged"
        );
    }
}

#[test]
fn full_validation_is_deterministic() {
    let config = ClearConfig::quick(66);
    let data = PreparedCohort::prepare(&config);
    let a = clear_folds(&data, &config, false, |_, _| {});
    let b = clear_folds(&data, &config, false, |_, _| {});
    assert_eq!(a.without_ft, b.without_ft);
    assert_eq!(a.with_ft, b.with_ft);
    assert_eq!(a.rt, b.rt);
    for (fa, fb) in a.folds.iter().zip(&b.folds) {
        assert_eq!(fa.assigned_cluster, fb.assigned_cluster);
        assert_eq!(fa.without_ft, fb.without_ft);
    }
}

#[test]
fn parallel_folds_are_bit_identical_to_sequential() {
    // The parallel driver shares read-only data across worker threads and
    // keys every random stream on (seed, fold); its aggregate must equal
    // the sequential driver's exactly — same structs, same bits — at any
    // thread count. The whole sweep runs with a metrics registry
    // installed: observation must never perturb computation (the clear-obs
    // determinism contract), so instrumented runs must stay bit-identical
    // too.
    let registry = Arc::new(clear::obs::Registry::new());
    clear::obs::install(Arc::clone(&registry));
    let config = ClearConfig::quick(66);
    let data = PreparedCohort::prepare(&config);
    let sequential = clear_folds(&data, &config, false, |_, _| {});
    for threads in [2usize, 4, 8] {
        let calls = AtomicUsize::new(0);
        let parallel = clear_folds_parallel(&data, &config, false, threads, |done, total| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert!(done <= total);
        });
        assert_eq!(
            parallel, sequential,
            "parallel validation at {threads} threads diverged from sequential"
        );
        assert_eq!(
            calls.load(Ordering::SeqCst),
            sequential.folds.len(),
            "progress must fire once per fold at {threads} threads"
        );
    }
    clear::obs::uninstall();
    // The instrumented sweep really recorded: training forwards and the
    // per-fold pipeline stages all flowed into the registry.
    let snapshot = registry.snapshot();
    assert!(
        snapshot.histograms.contains_key("stage.nn.forward"),
        "instrumentation recorded no forward passes"
    );
    assert!(snapshot.counters[clear::obs::counters::TRAIN_EPOCHS] > 0);
}

#[test]
fn backend_logits_are_bit_identical_across_thread_counts() {
    // Every inference backend is a pure function of (weights, input):
    // sharding a window batch across worker threads — each with its own
    // workspace, as the serving engine does — must reproduce the
    // sequential logits bit for bit at any thread count. For the scalar
    // and blocked backends this extends the bit-exactness contract to
    // concurrent serving; for int8 it pins that dynamic activation
    // quantization has no hidden shared state.
    let net = Arc::new(cnn_lstm(60, 9, 2, 42));
    let windows: Arc<Vec<Tensor>> = Arc::new(
        (0..24u64)
            .map(|i| {
                Tensor::from_vec(
                    &[1, 60, 9],
                    (0..540)
                        .map(|v| ((v as f32) * 0.13 + i as f32 * 0.71).sin())
                        .collect(),
                )
            })
            .collect(),
    );
    for kind in BackendKind::all() {
        let mut ws = Workspace::new();
        let sequential: Vec<Vec<u32>> = windows
            .iter()
            .map(|x| {
                net.forward_with(x, false, &mut ws, kind.instance())
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let chunk = windows.len().div_ceil(threads);
            let mut sharded: Vec<Vec<u32>> = Vec::with_capacity(windows.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let net = Arc::clone(&net);
                        let windows = Arc::clone(&windows);
                        scope.spawn(move || {
                            let mut ws = Workspace::new();
                            let lo = (w * chunk).min(windows.len());
                            let hi = ((w + 1) * chunk).min(windows.len());
                            windows[lo..hi]
                                .iter()
                                .map(|x| {
                                    net.forward_with(x, false, &mut ws, kind.instance())
                                        .as_slice()
                                        .iter()
                                        .map(|v| v.to_bits())
                                        .collect::<Vec<u32>>()
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    sharded.extend(handle.join().expect("worker panicked"));
                }
            });
            assert_eq!(
                sharded,
                sequential,
                "backend {} diverged at {threads} threads",
                kind.name()
            );
        }
    }
}
