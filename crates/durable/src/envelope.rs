//! Versioned, checksummed envelopes for whole-file artifacts.
//!
//! A sealed artifact is one header line followed by the raw payload:
//!
//! ```text
//! CLEAR-ARTIFACT v1 kind=<kind> len=<bytes> crc32=<8 hex>\n<payload>
//! ```
//!
//! [`open`] verifies magic, version, kind, declared length and checksum
//! before handing back a single byte of payload, so truncation, bit rot
//! and kind confusion (a snapshot fed where a bundle was expected) all
//! surface as [`DurableError::CorruptArtifact`] instead of as garbage
//! deserialized state. The payload itself stays uninterpreted — JSON in
//! practice — so the envelope composes with any serializer and keeps
//! sealed JSON artifacts valid UTF-8 end to end.

use crate::frame::crc32;
use crate::DurableError;

const MAGIC: &str = "CLEAR-ARTIFACT";
const VERSION: &str = "v1";

/// Longest header line [`open`] will scan for; anything bigger cannot be
/// a valid envelope and is rejected without scanning the whole payload.
const MAX_HEADER_BYTES: usize = 128;

/// Whether `bytes` starts with the envelope magic (cheap pre-check for
/// callers that also accept legacy, unsealed artifacts).
pub fn is_sealed(bytes: &[u8]) -> bool {
    bytes.starts_with(MAGIC.as_bytes())
}

/// Seals `payload` as a `kind` artifact.
pub fn seal(kind: &str, payload: &[u8]) -> Vec<u8> {
    debug_assert!(
        !kind.is_empty() && kind.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-'),
        "artifact kinds are short ascii tokens"
    );
    let header = format!(
        "{MAGIC} {VERSION} kind={kind} len={} crc32={:08x}\n",
        payload.len(),
        crc32(payload)
    );
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Seals a UTF-8 payload, keeping the artifact a valid `String`.
pub fn seal_str(kind: &str, payload: &str) -> String {
    String::from_utf8(seal(kind, payload.as_bytes())).expect("header and payload are UTF-8")
}

/// The checksum a sealed `kind` artifact of `payload` would carry — a
/// compact state fingerprint computed without materializing the sealed
/// bytes. Two payloads fingerprint equal iff their sealed artifacts
/// would be byte-identical (same kind, same length, same bytes), so the
/// anti-entropy scrub in `clear-cluster` can compare replica state by
/// exchanging one `u32` per user instead of whole snapshots.
pub fn fingerprint(kind: &str, payload: &[u8]) -> u32 {
    debug_assert!(
        !kind.is_empty() && kind.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-'),
        "artifact kinds are short ascii tokens"
    );
    // Chain the header through the payload checksum: kind and length are
    // covered, so a `tenant` payload can never fingerprint-collide with
    // a `pending` payload of the same bytes.
    let header = format!("{MAGIC} {VERSION} kind={kind} len={}\n", payload.len());
    let mut sealed = Vec::with_capacity(header.len() + payload.len());
    sealed.extend_from_slice(header.as_bytes());
    sealed.extend_from_slice(payload);
    crc32(&sealed)
}

/// Opens a sealed artifact, verifying everything the header declares,
/// and returns the payload slice.
///
/// # Errors
///
/// Returns [`DurableError::CorruptArtifact`] (tagged with the *expected*
/// `kind`) when the magic, version, kind, length or checksum do not
/// match.
pub fn open<'a>(kind: &'static str, bytes: &'a [u8]) -> Result<&'a [u8], DurableError> {
    let scan = &bytes[..bytes.len().min(MAX_HEADER_BYTES)];
    let newline = scan
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| DurableError::corrupt(kind, "missing envelope header"))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| DurableError::corrupt(kind, "envelope header is not UTF-8"))?;
    let mut words = header.split(' ');
    if words.next() != Some(MAGIC) {
        return Err(DurableError::corrupt(kind, "bad envelope magic"));
    }
    match words.next() {
        Some(VERSION) => {}
        Some(v) => {
            return Err(DurableError::corrupt(
                kind,
                format!("unsupported envelope version `{v}`"),
            ))
        }
        None => return Err(DurableError::corrupt(kind, "missing envelope version")),
    }
    let mut declared_kind = None;
    let mut declared_len = None;
    let mut declared_crc = None;
    for word in words {
        if let Some(v) = word.strip_prefix("kind=") {
            declared_kind = Some(v.to_string());
        } else if let Some(v) = word.strip_prefix("len=") {
            declared_len = v.parse::<usize>().ok();
        } else if let Some(v) = word.strip_prefix("crc32=") {
            declared_crc = u32::from_str_radix(v, 16).ok();
        }
    }
    match declared_kind {
        Some(k) if k == kind => {}
        Some(k) => {
            return Err(DurableError::corrupt(
                kind,
                format!("artifact is a `{k}`, expected a `{kind}`"),
            ))
        }
        None => return Err(DurableError::corrupt(kind, "missing artifact kind")),
    }
    let len = declared_len.ok_or_else(|| DurableError::corrupt(kind, "missing payload length"))?;
    let crc = declared_crc.ok_or_else(|| DurableError::corrupt(kind, "missing checksum"))?;
    let payload = &bytes[newline + 1..];
    if payload.len() != len {
        return Err(DurableError::corrupt(
            kind,
            format!("payload is {} bytes, header declares {len}", payload.len()),
        ));
    }
    if crc32(payload) != crc {
        return Err(DurableError::corrupt(kind, "payload fails its checksum"));
    }
    Ok(payload)
}

/// Opens a sealed UTF-8 artifact (see [`open`]).
///
/// # Errors
///
/// As [`open`], plus a corruption error when the payload is not UTF-8.
pub fn open_str<'a>(kind: &'static str, artifact: &'a str) -> Result<&'a str, DurableError> {
    let payload = open(kind, artifact.as_bytes())?;
    std::str::from_utf8(payload).map_err(|_| DurableError::corrupt(kind, "payload is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let sealed = seal("snapshot", b"{\"users\":[]}");
        assert!(is_sealed(&sealed));
        assert_eq!(open("snapshot", &sealed).unwrap(), b"{\"users\":[]}");
        let s = seal_str("bundle", "{\"models\":[]}");
        assert_eq!(open_str("bundle", &s).unwrap(), "{\"models\":[]}");
    }

    #[test]
    fn fingerprint_separates_payloads_and_kinds() {
        assert_eq!(
            fingerprint("tenant", b"{\"user\":\"amy\"}"),
            fingerprint("tenant", b"{\"user\":\"amy\"}"),
            "same kind and payload, same fingerprint"
        );
        assert_ne!(
            fingerprint("tenant", b"{\"user\":\"amy\"}"),
            fingerprint("tenant", b"{\"user\":\"bob\"}"),
            "payload change must move the fingerprint"
        );
        assert_ne!(
            fingerprint("tenant", b"{}"),
            fingerprint("pending", b"{}"),
            "kind change must move the fingerprint"
        );
    }

    #[test]
    fn empty_payload_round_trips() {
        let sealed = seal("wal", b"");
        assert_eq!(open("wal", &sealed).unwrap(), b"");
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let sealed = seal("snapshot", b"payload");
        let err = open("bundle", &sealed).unwrap_err();
        assert!(err.to_string().contains("expected a `bundle`"));
    }

    #[test]
    fn future_version_is_rejected_with_its_name() {
        let sealed = String::from_utf8(seal("bundle", b"x"))
            .unwrap()
            .replace("v1", "v9");
        let err = open("bundle", sealed.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("v9"), "{err}");
    }

    #[test]
    fn truncated_payload_is_corrupt() {
        let sealed = seal("bundle", b"0123456789");
        let err = open("bundle", &sealed[..sealed.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("bytes"), "{err}");
    }

    #[test]
    fn flipped_payload_byte_is_corrupt() {
        let mut sealed = seal("bundle", b"0123456789");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x04;
        let err = open("bundle", &sealed).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn unsealed_bytes_are_rejected_and_detected() {
        assert!(!is_sealed(b"{\"plain\":\"json\"}"));
        assert!(open("bundle", b"{\"plain\":\"json\"}").is_err());
        assert!(open("bundle", b"").is_err());
    }
}
