//! Edge deployment: one cluster checkpoint on three platforms.
//!
//! Pre-trains a cluster model in the "cloud", then deploys it on the
//! simulated GPU, Coral Edge TPU (int8) and Raspberry Pi + Intel NCS2
//! (fp16), comparing accuracy, model size, single-inference latency and
//! energy, and finally fine-tuning *on each device* for a new user.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::pipeline::CloudTraining;
use clear::edge::{Device, EdgeDeployment};

fn main() {
    let config = ClearConfig::quick(7);
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (&new_user, initial) = subjects.split_last().expect("cohort is non-empty");
    let cloud = CloudTraining::fit(&data, initial, &config);

    // Cold-start assignment of the new user, exactly as on a real rollout.
    let indices = data.indices_of(new_user);
    let ca_n = ((indices.len() as f32 * config.ca_fraction).ceil() as usize).max(1);
    let assigned = cloud.assign_user(&data, &indices[..ca_n]);
    let rest = &indices[ca_n..];
    let ft_n = ((indices.len() as f32 * config.ft_fraction).ceil() as usize).max(1);
    let ft_ds = cloud.user_dataset(&data, &rest[..ft_n]);
    let test_ds = cloud.user_dataset(&data, &rest[ft_n..]);

    let input_shape = [1usize, 123, data.windows()];
    println!(
        "{:<12} {:>9} {:>11} {:>12} {:>12} {:>12} {:>12}",
        "platform", "precision", "model size", "acc w/o FT", "acc w/ FT", "latency", "energy/inf"
    );
    for device in Device::all() {
        let mut dep = EdgeDeployment::new(cloud.model(assigned).clone(), device, &input_shape);
        let before = dep.evaluate(&test_ds);
        let outcome = dep.fine_tune(&ft_ds, &test_ds, &config.finetune);
        println!(
            "{:<12} {:>9} {:>9} B {:>11.1}% {:>11.1}% {:>9.1} ms {:>10.1} mJ",
            device.to_string(),
            dep.spec().precision.to_string(),
            dep.model_bytes(),
            before.accuracy * 100.0,
            outcome.score.accuracy * 100.0,
            dep.test_time_ms(),
            dep.spec().inference_energy_j(dep.flops()) * 1000.0
        );
        println!(
            "{:<12} on-device fine-tuning: {} epochs, simulated {:.1} s at {:.2} W",
            "",
            outcome.epochs_run,
            outcome.retraining_time_s,
            dep.spec().retraining_power_w()
        );
    }
}
