//! Lifecycle benchmark: what the Monitor → Refit → Shadow → Rollout loop
//! costs, written to `BENCH_lifecycle.json` so the lifecycle perf
//! trajectory is tracked across revisions.
//!
//! Reported numbers:
//!
//! * drift detection — observe+assess throughput of the sliding-window
//!   monitor on synthetic samples, and how many intervals a clear drift
//!   onset takes to raise its first signal;
//! * shadow evaluation — wall time of a dual-predict `shadow_eval` over
//!   replayed traffic against the plain live serve of the same windows
//!   (the overhead a canary costs the machine, never the serving path —
//!   both are observation-silent and non-committing);
//! * rollout — background refit wall time, artifact seal/open time and
//!   size, per-cluster adoption time (the WAL-logged generation swap),
//!   the post-adoption guard probe, and per-cluster restore time.
//!
//! The serving-path invariant is asserted in-process (`nn.train_epochs`
//! is pinned across shadow evaluation, adoption, guard and restore), so
//! a published BENCH_lifecycle.json implies training stayed off-path for
//! the whole run.

use clear_bench::cli_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::deployment::ClearBundle;
use clear_core::pipeline::CloudTraining;
use clear_features::FeatureMap;
use clear_lifecycle::{
    DriftConfig, DriftMonitor, RefitConfig, Refitter, RolloutConfig, RolloutController,
    WindowSample,
};
use clear_serve::{EngineConfig, ServeEngine, ServeRequest};
use clear_sim::DriftScenario;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Synthetic samples for the monitor throughput measurement.
const DRIFT_SAMPLES: usize = 200_000;
/// Repetitions of the serve/shadow timing loops.
const REPS: usize = 3;

#[derive(Debug, Serialize)]
struct DriftBench {
    samples: usize,
    observe_assess_per_sec: f32,
    intervals_to_detection: usize,
}

#[derive(Debug, Serialize)]
struct ShadowBench {
    probe_windows: usize,
    live_windows_per_sec: f32,
    shadow_eval_secs: f32,
    overhead_vs_live: f32,
}

#[derive(Debug, Serialize)]
struct RolloutBench {
    refit_secs: f32,
    candidate_clusters: usize,
    seal_bytes: usize,
    seal_ms: f32,
    open_ms: f32,
    adopted_clusters: usize,
    rollout_ms: f32,
    per_cluster_adopt_ms: f32,
    guard_ms: f32,
    rolled_back_by_guard: usize,
    per_cluster_restore_ms: f32,
}

#[derive(Debug, Serialize)]
struct LifecycleBench {
    users: usize,
    drift: DriftBench,
    shadow: ShadowBench,
    rollout: RolloutBench,
}

fn healthy_sample() -> WindowSample {
    WindowSample {
        served: 1_000,
        abstained: 100,
        quality_sum: 810.0,
        quality_count: 900,
        affinity_sum: 5.0,
        affinity_count: 10,
    }
}

fn drifted_sample() -> WindowSample {
    WindowSample {
        served: 1_000,
        abstained: 350,
        quality_sum: 455.0,
        quality_count: 650,
        affinity_sum: 10.0,
        affinity_count: 10,
    }
}

fn bench_drift() -> DriftBench {
    // Throughput: a stationary stream through observe+assess. The
    // monitor holds a bounded deque, so this is steady-state cost.
    let mut monitor = DriftMonitor::new(DriftConfig::default());
    let healthy = healthy_sample();
    let t0 = Instant::now();
    let mut spurious = 0usize;
    for _ in 0..DRIFT_SAMPLES {
        monitor.observe(healthy);
        spurious += monitor.assess().len();
    }
    let per_sec = DRIFT_SAMPLES as f32 / t0.elapsed().as_secs_f32().max(1e-9);
    assert_eq!(spurious, 0, "a stationary stream must never signal");

    // Detection latency: healthy history, then a hard onset; count the
    // intervals until the first signal. The geometry bounds it at
    // recent_windows (the reference span must stay clean).
    let config = DriftConfig::default();
    let mut monitor = DriftMonitor::new(config);
    for _ in 0..(config.reference_windows + config.recent_windows) {
        monitor.observe(healthy);
    }
    let mut intervals = 0usize;
    loop {
        monitor.observe(drifted_sample());
        intervals += 1;
        if !monitor.assess().is_empty() {
            break;
        }
        assert!(
            intervals <= config.recent_windows + 1,
            "a hard onset must be detected within the recent span"
        );
    }
    DriftBench {
        samples: DRIFT_SAMPLES,
        observe_assess_per_sec: per_sec,
        intervals_to_detection: intervals,
    }
}

fn main() {
    let cli = cli_from_args();

    let registry = Arc::new(clear_obs::Registry::new());
    clear_obs::install(Arc::clone(&registry));

    let drift = bench_drift();
    eprintln!(
        "drift monitor: {:.0} observe+assess/s, detection after {} intervals",
        drift.observe_assess_per_sec, drift.intervals_to_detection
    );

    // Reduced training profile: the benchmark measures the lifecycle
    // machinery, not SGD convergence.
    let mut config = cli.config.clone();
    config.train.epochs = 1;
    config.train.patience = 0;
    config.finetune.epochs = 1;
    config.refine.rounds = 2;
    config.refine.kmeans.n_init = 1;

    // Calibration-time cohort for training/onboarding, drifted cohort for
    // the traffic the candidates are judged on — the scenario the loop
    // exists for.
    let scenario = DriftScenario::new(config.cohort.clone(), 1.0, &[0, 1]);
    let base_data = PreparedCohort::prepare_from(scenario.phase(0.0), &config);
    let drifted_data = PreparedCohort::prepare_from(scenario.phase(1.0), &config);
    let subjects = base_data.subject_ids();
    let cloud = CloudTraining::fit(&base_data, &subjects, &config);
    let bundle = ClearBundle::from_cloud(&cloud);
    let engine = ServeEngine::new(bundle, EngineConfig::default());

    let users: Vec<String> = subjects.iter().map(|s| format!("user-{s}")).collect();
    for (rank, user) in users.iter().enumerate() {
        let indices = base_data.indices_of(subjects[rank]);
        let maps: Vec<FeatureMap> = indices[..2.min(indices.len())]
            .iter()
            .map(|&i| base_data.maps()[i].clone())
            .collect();
        engine.onboard(user, &maps).expect("onboarding maps");
    }

    // Replayed drifted traffic: the maps onboarding did not consume.
    let owned: Vec<(String, Vec<FeatureMap>)> = users
        .iter()
        .enumerate()
        .map(|(rank, user)| {
            let indices = drifted_data.indices_of(subjects[rank]);
            let maps = indices[2.min(indices.len())..]
                .iter()
                .map(|&i| drifted_data.maps()[i].clone())
                .collect();
            (user.clone(), maps)
        })
        .collect();
    let traffic: Vec<ServeRequest<'_>> = owned
        .iter()
        .map(|(user, maps)| ServeRequest { user, maps })
        .collect();

    let train_epochs = |snapshot: &clear_obs::Snapshot| -> u64 {
        snapshot
            .counters
            .get(clear_obs::counters::TRAIN_EPOCHS)
            .copied()
            .unwrap_or(0)
    };
    let epochs_before = train_epochs(&registry.snapshot());

    // Live baseline: the same observation-silent serve the shadow eval
    // performs, without the candidate side.
    let no_overrides = HashMap::new();
    let mut probe_windows = 0usize;
    let t0 = Instant::now();
    for rep in 0..REPS {
        let served: usize = engine
            .predict_shadow(&traffic, &no_overrides)
            .into_iter()
            .map(|r| r.map_or(0, |p| p.len()))
            .sum();
        if rep == 0 {
            probe_windows = served;
        }
    }
    let live_secs = t0.elapsed().as_secs_f32() / REPS as f32;
    assert!(probe_windows > 0, "the probe must serve windows");

    // Background refit on the drifted population.
    let refitter = Refitter::new(RefitConfig {
        train: config.train.clone(),
        ..RefitConfig::default()
    });
    let t0 = Instant::now();
    let generation = refitter.refit(engine.bundle(), &drifted_data, 1);
    let refit_secs = t0.elapsed().as_secs_f32();

    let t0 = Instant::now();
    let artifact = generation.seal().expect("seal generation");
    let seal_ms = t0.elapsed().as_secs_f32() * 1e3;
    let t0 = Instant::now();
    let reopened = clear_lifecycle::CandidateGeneration::open(&artifact).expect("open generation");
    let open_ms = t0.elapsed().as_secs_f32() * 1e3;
    let candidates = reopened.accepted();
    eprintln!(
        "refit: {refit_secs:.1} s, {} surviving candidate(s), artifact {} B",
        candidates.len(),
        artifact.len()
    );

    // Shadow evaluation (dual predict + per-cluster aggregation).
    let controller = RolloutController::new(RolloutConfig::default());
    let baseline = controller.shadow_eval(&engine, &no_overrides, &traffic);
    let t0 = Instant::now();
    let mut report = controller.shadow_eval(&engine, &candidates, &traffic);
    for _ in 1..REPS {
        report = controller.shadow_eval(&engine, &candidates, &traffic);
    }
    let shadow_secs = t0.elapsed().as_secs_f32() / REPS as f32;

    // Staged adoption, guard probe, and rollback of everything adopted —
    // so the restore path is timed on the same clusters.
    let decisions = controller.decide(&report, &candidates);
    let t0 = Instant::now();
    let adopted = controller
        .roll_out(&engine, &candidates, &decisions)
        .expect("rollout");
    let rollout_ms = t0.elapsed().as_secs_f32() * 1e3;
    let t0 = Instant::now();
    let rolled_back = controller
        .guard(&engine, &adopted, &baseline, &traffic)
        .expect("guard probe");
    let guard_ms = t0.elapsed().as_secs_f32() * 1e3;
    let still_adopted: Vec<_> = adopted
        .iter()
        .filter(|a| !rolled_back.contains(&a.cluster))
        .collect();
    let t0 = Instant::now();
    for a in &still_adopted {
        engine.restore_cluster_model(a.cluster).expect("restore");
    }
    let restore_secs = t0.elapsed().as_secs_f32();
    let per_cluster_restore_ms = if still_adopted.is_empty() {
        0.0
    } else {
        restore_secs * 1e3 / still_adopted.len() as f32
    };

    // Nothing above may have trained on the serving path.
    let epochs_after = train_epochs(&registry.snapshot());
    let refit_epochs = config.train.epochs as u64 * generation.candidates.len() as u64;
    assert!(
        epochs_after - epochs_before <= refit_epochs,
        "serving-path operations trained: {} epochs beyond the refit budget",
        (epochs_after - epochs_before).saturating_sub(refit_epochs)
    );

    let results = LifecycleBench {
        users: users.len(),
        drift,
        shadow: ShadowBench {
            probe_windows,
            live_windows_per_sec: probe_windows as f32 / live_secs.max(1e-9),
            shadow_eval_secs: shadow_secs,
            overhead_vs_live: shadow_secs / live_secs.max(1e-9),
        },
        rollout: RolloutBench {
            refit_secs,
            candidate_clusters: candidates.len(),
            seal_bytes: artifact.len(),
            seal_ms,
            open_ms,
            adopted_clusters: adopted.len(),
            rollout_ms,
            per_cluster_adopt_ms: if adopted.is_empty() {
                0.0
            } else {
                rollout_ms / adopted.len() as f32
            },
            guard_ms,
            rolled_back_by_guard: rolled_back.len(),
            per_cluster_restore_ms,
        },
    };
    eprintln!(
        "shadow eval {:.2} s over {} windows ({:.2}x live); rollout {:.1} ms for {} cluster(s), guard {:.1} ms",
        results.shadow.shadow_eval_secs,
        results.shadow.probe_windows,
        results.shadow.overhead_vs_live,
        results.rollout.rollout_ms,
        results.rollout.adopted_clusters,
    );

    let path = cli
        .json_path
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_lifecycle.json"));
    match serde_json::to_string_pretty(&results) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("results written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize results: {e}"),
    }

    // Export the observability snapshot next to the main results file.
    let obs_path = path.with_file_name("BENCH_lifecycle_obs.json");
    let snapshot = registry.snapshot();
    match std::fs::write(&obs_path, snapshot.to_json_pretty()) {
        Ok(()) => eprintln!(
            "observability snapshot ({} counters, {} histograms) written to {}",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            obs_path.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", obs_path.display()),
    }
    clear_obs::uninstall();
}
