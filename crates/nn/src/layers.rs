//! Neural-network layers with exact backward passes.
//!
//! Each layer processes one sample at a time (mini-batches accumulate
//! gradients across consecutive `forward`/`backward` calls before an
//! optimizer step). Caches needed by the backward pass are stored in the
//! layer and skipped during serialization, so checkpoints contain weights
//! only.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A sequential-network layer.
///
/// Using an enum (rather than trait objects) keeps networks serializable
/// and keeps dispatch static.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// 2D valid convolution.
    Conv2d(Conv2d),
    /// Rectified linear activation.
    Relu(Relu),
    /// Max pooling with stride equal to the kernel.
    MaxPool2d(MaxPool2d),
    /// `[C, H, W] → [W, C·H]` conversion feeding the LSTM (time = windows).
    MapToSequence(MapToSequence),
    /// Long short-term memory over a `[T, D]` sequence, returning the last
    /// hidden state.
    Lstm(Lstm),
    /// Fully connected layer.
    Dense(Dense),
    /// Inverted dropout (train-time only).
    Dropout(Dropout),
}

impl Layer {
    /// Runs the layer forward. `train` enables dropout.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        match self {
            Layer::Conv2d(l) => l.forward(x),
            Layer::Relu(l) => l.forward(x),
            Layer::MaxPool2d(l) => l.forward(x),
            Layer::MapToSequence(l) => l.forward(x),
            Layer::Lstm(l) => l.forward(x),
            Layer::Dense(l) => l.forward(x),
            Layer::Dropout(l) => l.forward(x, train),
        }
    }

    /// Propagates the gradient, accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` (no cached activation).
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(l) => l.backward(grad),
            Layer::Relu(l) => l.backward(grad),
            Layer::MaxPool2d(l) => l.backward(grad),
            Layer::MapToSequence(l) => l.backward(grad),
            Layer::Lstm(l) => l.backward(grad),
            Layer::Dense(l) => l.backward(grad),
            Layer::Dropout(l) => l.backward(grad),
        }
    }

    /// Visits each (parameter, gradient) pair for the optimizer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        match self {
            Layer::Conv2d(l) => {
                f(&mut l.w, &mut l.gw);
                f(&mut l.b, &mut l.gb);
            }
            Layer::Lstm(l) => {
                f(&mut l.wx, &mut l.gwx);
                f(&mut l.wh, &mut l.gwh);
                f(&mut l.b, &mut l.gb);
            }
            Layer::Dense(l) => {
                f(&mut l.w, &mut l.gw);
                f(&mut l.b, &mut l.gb);
            }
            Layer::Relu(_) | Layer::MaxPool2d(_) | Layer::MapToSequence(_) | Layer::Dropout(_) => {}
        }
    }

    /// Resets accumulated gradients to zero.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |_, g| g.iter_mut().for_each(|v| *v = 0.0));
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d(l) => l.w.len() + l.b.len(),
            Layer::Lstm(l) => l.wx.len() + l.wh.len() + l.b.len(),
            Layer::Dense(l) => l.w.len() + l.b.len(),
            _ => 0,
        }
    }

    /// Short human-readable layer name.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "Conv2d",
            Layer::Relu(_) => "ReLU",
            Layer::MaxPool2d(_) => "MaxPool2d",
            Layer::MapToSequence(_) => "MapToSequence",
            Layer::Lstm(_) => "LSTM",
            Layer::Dense(_) => "Dense",
            Layer::Dropout(_) => "Dropout",
        }
    }
}

fn xavier(fan_in: usize, fan_out: usize, n: usize, rng: &mut SmallRng) -> Vec<f32> {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..n).map(|_| rng.gen_range(-limit..limit)).collect()
}

// ---------------------------------------------------------------- Conv2d --

/// Valid 2D convolution (stride 1), input `[C_in, H, W]`, output
/// `[C_out, H-kh+1, W-kw+1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    pub(crate) w: Vec<f32>,
    pub(crate) b: Vec<f32>,
    #[serde(skip)]
    pub(crate) gw: Vec<f32>,
    #[serde(skip)]
    pub(crate) gb: Vec<f32>,
    #[serde(skip)]
    cache: Option<Tensor>,
}

impl Conv2d {
    /// New Xavier-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(in_ch: usize, out_ch: usize, kh: usize, kw: usize, seed: u64) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && kh > 0 && kw > 0, "zero conv dim");
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = out_ch * in_ch * kh * kw;
        let fan_in = in_ch * kh * kw;
        let fan_out = out_ch * kh * kw;
        Self {
            in_ch,
            out_ch,
            kh,
            kw,
            w: xavier(fan_in, fan_out, n, &mut rng),
            b: vec![0.0; out_ch],
            gw: vec![0.0; n],
            gb: vec![0.0; out_ch],
            cache: None,
        }
    }

    /// `(in_ch, out_ch, kh, kw)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.in_ch, self.out_ch, self.kh, self.kw)
    }

    fn ensure_grads(&mut self) {
        if self.gw.len() != self.w.len() {
            self.gw = vec![0.0; self.w.len()];
        }
        if self.gb.len() != self.b.len() {
            self.gb = vec![0.0; self.b.len()];
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 3, "Conv2d expects [C, H, W]");
        assert_eq!(x.shape()[0], self.in_ch, "Conv2d channel mismatch");
        self.ensure_grads();
        let (h, w) = (x.shape()[1], x.shape()[2]);
        assert!(
            h >= self.kh && w >= self.kw,
            "input {h}x{w} smaller than kernel {}x{}",
            self.kh,
            self.kw
        );
        let (oh, ow) = (h - self.kh + 1, w - self.kw + 1);
        let mut out = Tensor::zeros(&[self.out_ch, oh, ow]);
        let xs = x.as_slice();
        {
            let od = out.as_mut_slice();
            for o in 0..self.out_ch {
                for y in 0..oh {
                    for xcol in 0..ow {
                        let mut acc = self.b[o];
                        for i in 0..self.in_ch {
                            for ky in 0..self.kh {
                                let wrow = ((o * self.in_ch + i) * self.kh + ky) * self.kw;
                                let xrow = (i * h + y + ky) * w + xcol;
                                for kx in 0..self.kw {
                                    acc += self.w[wrow + kx] * xs[xrow + kx];
                                }
                            }
                        }
                        od[(o * oh + y) * ow + xcol] = acc;
                    }
                }
            }
        }
        self.cache = Some(x.clone());
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache.as_ref().expect("Conv2d backward before forward");
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let (oh, ow) = (h - self.kh + 1, w - self.kw + 1);
        assert_eq!(grad.shape(), &[self.out_ch, oh, ow], "Conv2d grad shape");
        let xs = x.as_slice();
        let gs = grad.as_slice();
        let mut gin = Tensor::zeros(&[self.in_ch, h, w]);
        let gd = gin.as_mut_slice();
        for o in 0..self.out_ch {
            for y in 0..oh {
                for xcol in 0..ow {
                    let g = gs[(o * oh + y) * ow + xcol];
                    if g == 0.0 {
                        continue;
                    }
                    self.gb[o] += g;
                    for i in 0..self.in_ch {
                        for ky in 0..self.kh {
                            let wrow = ((o * self.in_ch + i) * self.kh + ky) * self.kw;
                            let xrow = (i * h + y + ky) * w + xcol;
                            for kx in 0..self.kw {
                                self.gw[wrow + kx] += g * xs[xrow + kx];
                                gd[xrow + kx] += g * self.w[wrow + kx];
                            }
                        }
                    }
                }
            }
        }
        gin
    }
}

// ------------------------------------------------------------------ Relu --

/// Rectified linear unit, any rank.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Vec<bool>,
    #[serde(skip)]
    shape: Vec<usize>,
}

impl Relu {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.mask = x.as_slice().iter().map(|&v| v > 0.0).collect();
        self.shape = x.shape().to_vec();
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.shape(), &self.shape[..], "ReLU grad shape");
        let data = grad
            .as_slice()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(&self.shape, data)
    }
}

// ------------------------------------------------------------- MaxPool2d --

/// Max pooling over `[C, H, W]` with window `(ph, pw)` and stride equal to
/// the window; trailing remainders are dropped (floor semantics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    ph: usize,
    pw: usize,
    #[serde(skip)]
    argmax: Vec<usize>,
    #[serde(skip)]
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// New pooling layer with window `(ph, pw)`.
    ///
    /// # Panics
    ///
    /// Panics if either window dimension is zero.
    pub fn new(ph: usize, pw: usize) -> Self {
        assert!(ph > 0 && pw > 0, "pool window must be nonzero");
        Self {
            ph,
            pw,
            argmax: Vec::new(),
            in_shape: Vec::new(),
        }
    }

    /// `(ph, pw)`.
    pub fn window(&self) -> (usize, usize) {
        (self.ph, self.pw)
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 3, "MaxPool2d expects [C, H, W]");
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let (oh, ow) = (h / self.ph, w / self.pw);
        assert!(oh > 0 && ow > 0, "input smaller than pool window");
        let xs = x.as_slice();
        let mut out = Tensor::zeros(&[c, oh, ow]);
        self.argmax = vec![0; c * oh * ow];
        self.in_shape = x.shape().to_vec();
        let od = out.as_mut_slice();
        for ci in 0..c {
            for y in 0..oh {
                for xcol in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for py in 0..self.ph {
                        for px in 0..self.pw {
                            let idx = (ci * h + y * self.ph + py) * w + xcol * self.pw + px;
                            if xs[idx] > best {
                                best = xs[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = (ci * oh + y) * ow + xcol;
                    od[oidx] = best;
                    self.argmax[oidx] = best_idx;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(
            !self.in_shape.is_empty(),
            "MaxPool2d backward before forward"
        );
        let mut gin = Tensor::zeros(&self.in_shape);
        let gd = gin.as_mut_slice();
        for (oidx, &g) in grad.as_slice().iter().enumerate() {
            gd[self.argmax[oidx]] += g;
        }
        gin
    }
}

// --------------------------------------------------------- MapToSequence --

/// Converts a `[C, H, W]` convolutional activation into a `[W, C·H]`
/// sequence — each feature-map window (time step) becomes one LSTM input.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MapToSequence {
    #[serde(skip)]
    in_shape: Vec<usize>,
}

impl MapToSequence {
    /// New converter.
    pub fn new() -> Self {
        Self::default()
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 3, "MapToSequence expects [C, H, W]");
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        self.in_shape = x.shape().to_vec();
        let mut out = Tensor::zeros(&[w, c * h]);
        let od = out.as_mut_slice();
        let xs = x.as_slice();
        for t in 0..w {
            for ci in 0..c {
                for y in 0..h {
                    od[t * (c * h) + ci * h + y] = xs[(ci * h + y) * w + t];
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(
            !self.in_shape.is_empty(),
            "MapToSequence backward before forward"
        );
        let (c, h, w) = (self.in_shape[0], self.in_shape[1], self.in_shape[2]);
        assert_eq!(grad.shape(), &[w, c * h], "MapToSequence grad shape");
        let mut gin = Tensor::zeros(&self.in_shape);
        let gd = gin.as_mut_slice();
        let gs = grad.as_slice();
        for t in 0..w {
            for ci in 0..c {
                for y in 0..h {
                    gd[(ci * h + y) * w + t] = gs[t * (c * h) + ci * h + y];
                }
            }
        }
        gin
    }
}

// ------------------------------------------------------------------ Lstm --

/// Single-layer LSTM consuming `[T, D]`, emitting the final hidden state
/// `[H]`. Gate order in the stacked weights is `i, f, g, o`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    input: usize,
    hidden: usize,
    pub(crate) wx: Vec<f32>, // [4H, D]
    pub(crate) wh: Vec<f32>, // [4H, H]
    pub(crate) b: Vec<f32>,  // [4H]
    #[serde(skip)]
    pub(crate) gwx: Vec<f32>,
    #[serde(skip)]
    pub(crate) gwh: Vec<f32>,
    #[serde(skip)]
    pub(crate) gb: Vec<f32>,
    #[serde(skip)]
    cache: Option<LstmCache>,
}

#[derive(Debug, Clone, Default)]
struct LstmCache {
    xs: Vec<Vec<f32>>,    // input per step
    gates: Vec<Vec<f32>>, // activated i,f,g,o per step (4H)
    cs: Vec<Vec<f32>>,    // cell states per step
    hs: Vec<Vec<f32>>,    // hidden states per step
}

impl Lstm {
    /// New Xavier-initialized LSTM with a forget-gate bias of 1.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(input: usize, hidden: usize, seed: u64) -> Self {
        assert!(input > 0 && hidden > 0, "zero lstm dim");
        let mut rng = SmallRng::seed_from_u64(seed);
        let wx = xavier(input, hidden, 4 * hidden * input, &mut rng);
        let wh = xavier(hidden, hidden, 4 * hidden * hidden, &mut rng);
        let mut b = vec![0.0; 4 * hidden];
        // Forget-gate bias 1.0 (standard trick for gradient flow).
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        let (nwx, nwh, nb) = (wx.len(), wh.len(), b.len());
        Self {
            input,
            hidden,
            wx,
            wh,
            b,
            gwx: vec![0.0; nwx],
            gwh: vec![0.0; nwh],
            gb: vec![0.0; nb],
            cache: None,
        }
    }

    /// `(input_size, hidden_size)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.input, self.hidden)
    }

    fn ensure_grads(&mut self) {
        if self.gwx.len() != self.wx.len() {
            self.gwx = vec![0.0; self.wx.len()];
        }
        if self.gwh.len() != self.wh.len() {
            self.gwh = vec![0.0; self.wh.len()];
        }
        if self.gb.len() != self.b.len() {
            self.gb = vec![0.0; self.b.len()];
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "LSTM expects [T, D]");
        assert_eq!(x.shape()[1], self.input, "LSTM input width mismatch");
        self.ensure_grads();
        let t_len = x.shape()[0];
        let hdim = self.hidden;
        let mut cache = LstmCache::default();
        let mut h = vec![0.0f32; hdim];
        let mut c = vec![0.0f32; hdim];
        for t in 0..t_len {
            let xt = &x.as_slice()[t * self.input..(t + 1) * self.input];
            // z = Wx x + Wh h + b, gate blocks i|f|g|o.
            let mut z = self.b.clone();
            for row in 0..4 * hdim {
                let mut acc = 0.0f32;
                let wrow = &self.wx[row * self.input..(row + 1) * self.input];
                for (wv, xv) in wrow.iter().zip(xt) {
                    acc += wv * xv;
                }
                let hrow = &self.wh[row * hdim..(row + 1) * hdim];
                for (wv, hv) in hrow.iter().zip(&h) {
                    acc += wv * hv;
                }
                z[row] += acc;
            }
            let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
            let mut gates = vec![0.0f32; 4 * hdim];
            for j in 0..hdim {
                gates[j] = sigmoid(z[j]); // i
                gates[hdim + j] = sigmoid(z[hdim + j]); // f
                gates[2 * hdim + j] = z[2 * hdim + j].tanh(); // g
                gates[3 * hdim + j] = sigmoid(z[3 * hdim + j]); // o
            }
            let mut new_c = vec![0.0f32; hdim];
            let mut new_h = vec![0.0f32; hdim];
            for j in 0..hdim {
                new_c[j] = gates[hdim + j] * c[j] + gates[j] * gates[2 * hdim + j];
                new_h[j] = gates[3 * hdim + j] * new_c[j].tanh();
            }
            cache.xs.push(xt.to_vec());
            cache.gates.push(gates);
            cache.cs.push(new_c.clone());
            cache.hs.push(new_h.clone());
            c = new_c;
            h = new_h;
        }
        self.cache = Some(cache);
        Tensor::from_vec(&[hdim], h)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("LSTM backward before forward");
        let hdim = self.hidden;
        assert_eq!(grad.shape(), &[hdim], "LSTM grad shape");
        let t_len = cache.xs.len();
        let mut dh = grad.as_slice().to_vec();
        let mut dc = vec![0.0f32; hdim];
        let mut gin = Tensor::zeros(&[t_len, self.input]);
        for t in (0..t_len).rev() {
            let gates = &cache.gates[t];
            let c_t = &cache.cs[t];
            let c_prev: Vec<f32> = if t == 0 {
                vec![0.0; hdim]
            } else {
                cache.cs[t - 1].clone()
            };
            let h_prev: Vec<f32> = if t == 0 {
                vec![0.0; hdim]
            } else {
                cache.hs[t - 1].clone()
            };
            // dz blocks i|f|g|o.
            let mut dz = vec![0.0f32; 4 * hdim];
            for j in 0..hdim {
                let i = gates[j];
                let f = gates[hdim + j];
                let g = gates[2 * hdim + j];
                let o = gates[3 * hdim + j];
                let tc = c_t[j].tanh();
                let do_ = dh[j] * tc;
                let dct = dc[j] + dh[j] * o * (1.0 - tc * tc);
                let di = dct * g;
                let df = dct * c_prev[j];
                let dg = dct * i;
                dc[j] = dct * f; // becomes dc_{t-1}
                dz[j] = di * i * (1.0 - i);
                dz[hdim + j] = df * f * (1.0 - f);
                dz[2 * hdim + j] = dg * (1.0 - g * g);
                dz[3 * hdim + j] = do_ * o * (1.0 - o);
            }
            // Parameter gradients and upstream gradients.
            let xt = &cache.xs[t];
            let mut dh_prev = vec![0.0f32; hdim];
            {
                let gx = &mut gin.as_mut_slice()[t * self.input..(t + 1) * self.input];
                for row in 0..4 * hdim {
                    let dzr = dz[row];
                    if dzr == 0.0 {
                        continue;
                    }
                    self.gb[row] += dzr;
                    let wx_row = row * self.input;
                    for (k, &xv) in xt.iter().enumerate() {
                        self.gwx[wx_row + k] += dzr * xv;
                        gx[k] += dzr * self.wx[wx_row + k];
                    }
                    let wh_row = row * hdim;
                    for (k, &hv) in h_prev.iter().enumerate() {
                        self.gwh[wh_row + k] += dzr * hv;
                        dh_prev[k] += dzr * self.wh[wh_row + k];
                    }
                }
            }
            dh = dh_prev;
        }
        gin
    }
}

// ----------------------------------------------------------------- Dense --

/// Fully connected layer `[D] → [O]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    input: usize,
    output: usize,
    pub(crate) w: Vec<f32>, // [O, D]
    pub(crate) b: Vec<f32>,
    #[serde(skip)]
    pub(crate) gw: Vec<f32>,
    #[serde(skip)]
    pub(crate) gb: Vec<f32>,
    #[serde(skip)]
    cache: Option<Vec<f32>>,
}

impl Dense {
    /// New Xavier-initialized dense layer.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(input: usize, output: usize, seed: u64) -> Self {
        assert!(input > 0 && output > 0, "zero dense dim");
        let mut rng = SmallRng::seed_from_u64(seed);
        Self {
            input,
            output,
            w: xavier(input, output, input * output, &mut rng),
            b: vec![0.0; output],
            gw: vec![0.0; input * output],
            gb: vec![0.0; output],
            cache: None,
        }
    }

    /// `(input_size, output_size)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.input, self.output)
    }

    fn ensure_grads(&mut self) {
        if self.gw.len() != self.w.len() {
            self.gw = vec![0.0; self.w.len()];
        }
        if self.gb.len() != self.b.len() {
            self.gb = vec![0.0; self.b.len()];
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 1, "Dense expects [D]");
        assert_eq!(x.numel(), self.input, "Dense input width mismatch");
        self.ensure_grads();
        let xs = x.as_slice();
        let mut out = vec![0.0f32; self.output];
        for (o, ov) in out.iter_mut().enumerate() {
            let row = &self.w[o * self.input..(o + 1) * self.input];
            *ov = self.b[o] + row.iter().zip(xs).map(|(w, x)| w * x).sum::<f32>();
        }
        self.cache = Some(xs.to_vec());
        Tensor::from_vec(&[self.output], out)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let xs = self.cache.as_ref().expect("Dense backward before forward");
        assert_eq!(grad.shape(), &[self.output], "Dense grad shape");
        let gs = grad.as_slice();
        let mut gin = vec![0.0f32; self.input];
        for (o, &g) in gs.iter().enumerate() {
            self.gb[o] += g;
            let row = o * self.input;
            for k in 0..self.input {
                self.gw[row + k] += g * xs[k];
                gin[k] += g * self.w[row + k];
            }
        }
        Tensor::from_vec(&[self.input], gin)
    }
}

// --------------------------------------------------------------- Dropout --

/// Inverted dropout: active only in training mode, identity at inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    p: f32,
    seed: u64,
    counter: u64,
    #[serde(skip)]
    mask: Vec<f32>,
    #[serde(skip)]
    shape: Vec<usize>,
}

impl Dropout {
    /// New dropout with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Self {
            p,
            seed,
            counter: 0,
            mask: Vec::new(),
            shape: Vec::new(),
        }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.shape = x.shape().to_vec();
        if !train || self.p == 0.0 {
            self.mask = vec![1.0; x.numel()];
            return x.clone();
        }
        self.counter = self.counter.wrapping_add(1);
        let mut rng = SmallRng::seed_from_u64(self.seed.wrapping_add(self.counter));
        let scale = 1.0 / (1.0 - self.p);
        self.mask = (0..x.numel())
            .map(|_| {
                if rng.gen_range(0.0..1.0f32) < self.p {
                    0.0
                } else {
                    scale
                }
            })
            .collect();
        let data = x
            .as_slice()
            .iter()
            .zip(&self.mask)
            .map(|(&v, &m)| v * m)
            .collect();
        Tensor::from_vec(x.shape(), data)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.shape(), &self.shape[..], "Dropout grad shape");
        let data = grad
            .as_slice()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| g * m)
            .collect();
        Tensor::from_vec(&self.shape, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0);
        conv.w = vec![2.0];
        conv.b = vec![1.0];
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn conv_output_shape() {
        let mut conv = Conv2d::new(2, 3, 3, 2, 1);
        let x = Tensor::zeros(&[2, 10, 5]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[3, 8, 4]);
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 0.0, 9.0]);
        let y = pool.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.as_slice(), &[5.0, 9.0]);
        let g = Tensor::from_vec(&[1, 1, 2], vec![1.0, 2.0]);
        let gin = pool.backward(&g);
        // Gradient routes only to the argmax positions.
        assert_eq!(gin.as_slice(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = Tensor::from_vec(&[4], vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(relu.backward(&g).as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn map_to_sequence_round_trip() {
        let mut m2s = MapToSequence::new();
        let x = Tensor::from_vec(&[2, 2, 3], (0..12).map(|v| v as f32).collect());
        let seq = m2s.forward(&x);
        assert_eq!(seq.shape(), &[3, 4]);
        // t=0 gathers column 0 of both channels: [0, 3, 6, 9].
        assert_eq!(&seq.as_slice()[..4], &[0.0, 3.0, 6.0, 9.0]);
        let back = m2s.backward(&seq);
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn lstm_shapes_and_determinism() {
        let mut lstm = Lstm::new(5, 7, 3);
        let x = Tensor::from_vec(&[4, 5], (0..20).map(|v| v as f32 * 0.1).collect());
        let h1 = lstm.forward(&x);
        let h2 = lstm.forward(&x);
        assert_eq!(h1.shape(), &[7]);
        assert_eq!(h1.as_slice(), h2.as_slice());
        assert!(h1.as_slice().iter().all(|v| v.abs() < 1.0)); // tanh-bounded
    }

    #[test]
    fn lstm_remembers_sequence_order() {
        let mut lstm = Lstm::new(1, 4, 9);
        let up = Tensor::from_vec(&[3, 1], vec![0.1, 0.5, 0.9]);
        let down = Tensor::from_vec(&[3, 1], vec![0.9, 0.5, 0.1]);
        let hu = lstm.forward(&up).as_slice().to_vec();
        let hd = lstm.forward(&down).as_slice().to_vec();
        assert_ne!(hu, hd, "order must matter to an LSTM");
    }

    #[test]
    fn dense_linear_map() {
        let mut dense = Dense::new(2, 2, 0);
        dense.w = vec![1.0, 2.0, 3.0, 4.0];
        dense.b = vec![0.5, -0.5];
        let y = dense.forward(&Tensor::from_vec(&[2], vec![1.0, 1.0]));
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(&[8], vec![1.0; 8]);
        let y = d.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::from_vec(&[10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let mean = y.as_slice().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.06, "inverted-dropout mean {mean}");
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 4_000 && zeros < 6_000);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_before_forward_panics() {
        let mut dense = Dense::new(2, 2, 0);
        let _ = dense.backward(&Tensor::zeros(&[2]));
    }

    #[test]
    fn layer_enum_dispatch_and_param_count() {
        let mut layer = Layer::Dense(Dense::new(3, 2, 0));
        assert_eq!(layer.name(), "Dense");
        assert_eq!(layer.param_count(), 8);
        let y = layer.forward(&Tensor::zeros(&[3]), false);
        assert_eq!(y.shape(), &[2]);
        let mut visited = 0;
        layer.visit_params(&mut |p, g| {
            assert_eq!(p.len(), g.len());
            visited += 1;
        });
        assert_eq!(visited, 2);
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut layer = Layer::Dense(Dense::new(2, 1, 0));
        let x = Tensor::from_vec(&[2], vec![1.0, 1.0]);
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&Tensor::from_vec(&[1], vec![1.0]));
        let mut nonzero = false;
        layer.visit_params(&mut |_, g| nonzero |= g.iter().any(|&v| v != 0.0));
        assert!(nonzero);
        layer.zero_grads();
        layer.visit_params(&mut |_, g| assert!(g.iter().all(|&v| v == 0.0)));
    }
}
