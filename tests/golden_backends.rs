//! Golden divergence records for the int8 inference backend.
//!
//! `BlockedF32` is covered by bit-exactness tests (any divergence at all
//! is a failure), but `Int8Backend` is *supposed* to diverge from f32 —
//! the contract is that the divergence is bounded and stable. This
//! harness pins, against a JSON record under `tests/golden/`:
//!
//! * the exact max logit divergence between the scalar f32 oracle and
//!   the int8 backend on a fixed input grid (untrained nets of every
//!   production shape plus one trained model), and
//! * Table I/II-style end metrics (accuracy, binary F1) of one trained
//!   model served through the f32 edge path (GPU device) and the int8
//!   edge path (Coral TPU device), together with their deltas.
//!
//! Blessing follows the `golden_tables` flow: the record is written when
//! missing or when `GOLDEN_BLESS` is set:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test golden_backends
//! ```
//!
//! Re-bless only when a change is *supposed* to move int8 numerics (a
//! different quantization scheme, new calibration) — never to silence a
//! diff you cannot explain.

use clear::edge::{Device, EdgeDeployment};
use clear::nn::backend::BackendKind;
use clear::nn::data::Dataset;
use clear::nn::metrics::FoldScore;
use clear::nn::network::{cnn_lstm, cnn_lstm_compact, Network};
use clear::nn::tensor::Tensor;
use clear::nn::train::{self, TrainConfig};
use clear::nn::workspace::Workspace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::path::Path;
use std::sync::OnceLock;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/backends_int8.json"
);
const SEED: u64 = 2025;

fn wavy_input(shape: &[usize], seed: u64) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n)
            .map(|v| ((v as f32) * 0.37 + seed as f32 * 1.7).sin())
            .collect(),
    )
}

/// Max |f32 - int8| over the logits of `inputs` fixed probe inputs.
fn max_divergence(net: &Network, shape: &[usize], inputs: u64) -> f32 {
    let mut ws = Workspace::new();
    let mut max_div = 0.0f32;
    for seed in 0..inputs {
        let x = wavy_input(shape, seed);
        let oracle = net.forward(&x, false, &mut ws).clone();
        let int8 = net
            .forward_with(&x, false, &mut ws, BackendKind::Int8.instance())
            .clone();
        for (a, b) in oracle.as_slice().iter().zip(int8.as_slice()) {
            max_div = max_div.max((a - b).abs());
        }
    }
    max_div
}

/// The same easy-but-not-trivial toy task the edge deployment tests use:
/// label 1 adds a block offset to the top rows of a noisy 30×5 map.
fn toy_maps(n: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut d = Dataset::new();
    for i in 0..n {
        let label = i % 2;
        let mut data = vec![0.0f32; 30 * 5];
        for v in &mut data {
            *v = rng.gen_range(-0.3..0.3);
        }
        if label == 1 {
            for r in 0..10 {
                for c in 0..5 {
                    data[r * 5 + c] += 1.2;
                }
            }
        }
        d.push(Tensor::from_vec(&[1, 30, 5], data), label);
    }
    d
}

struct MeasuredBackends {
    divergence: Vec<(&'static str, f32)>,
    f32_score: FoldScore,
    int8_score: FoldScore,
}

fn measured() -> &'static MeasuredBackends {
    static MEASURED: OnceLock<MeasuredBackends> = OnceLock::new();
    MEASURED.get_or_init(|| {
        let mut trained = cnn_lstm(30, 5, 2, SEED);
        let config = TrainConfig {
            epochs: 6,
            batch_size: 8,
            seed: SEED,
            ..Default::default()
        };
        train::train(&mut trained, &toy_maps(40, SEED), None, &config);

        let divergence = vec![
            (
                "untrained-paper-30x5",
                max_divergence(&cnn_lstm(30, 5, 2, 11), &[1, 30, 5], 4),
            ),
            (
                "untrained-paper-60x9",
                max_divergence(&cnn_lstm(60, 9, 2, 13), &[1, 60, 9], 4),
            ),
            (
                "untrained-compact-30x6",
                max_divergence(&cnn_lstm_compact(30, 6, 2, 17), &[1, 30, 6], 4),
            ),
            ("trained-paper-30x5", max_divergence(&trained, &[1, 30, 5], 4)),
        ];

        // Table I/II-style end metrics: the same checkpoint and the same
        // held-out data served through the f32 path (GPU) and the real
        // int8 path (Coral TPU).
        let eval = toy_maps(30, SEED.wrapping_add(1));
        let mut gpu = EdgeDeployment::new(trained.clone(), Device::Gpu, &[1, 30, 5]);
        let mut tpu = EdgeDeployment::new(trained, Device::CoralTpu, &[1, 30, 5]);
        MeasuredBackends {
            divergence,
            f32_score: gpu.evaluate(&eval),
            int8_score: tpu.evaluate(&eval),
        }
    })
}

fn measured_value() -> Value {
    let m = measured();
    let divergence: serde_json::Map<String, Value> = m
        .divergence
        .iter()
        .map(|(name, v)| ((*name).to_string(), Value::from(f64::from(*v))))
        .collect();
    serde_json::json!({
        "seed": SEED,
        "max_logit_divergence": divergence,
        "metrics": {
            "f32": { "accuracy": m.f32_score.accuracy, "f1": m.f32_score.f1 },
            "int8": { "accuracy": m.int8_score.accuracy, "f1": m.int8_score.f1 },
            "delta": {
                "accuracy": m.int8_score.accuracy - m.f32_score.accuracy,
                "f1": m.int8_score.f1 - m.f32_score.f1,
            },
        },
    })
}

/// Recursive field-by-field diff; every mismatch becomes one line with
/// its JSON path.
fn diff_values(path: &str, golden: &Value, measured: &Value, out: &mut Vec<String>) {
    match (golden, measured) {
        (Value::Object(g), Value::Object(m)) => {
            for (key, gv) in g {
                match m.get(key) {
                    Some(mv) => diff_values(&format!("{path}.{key}"), gv, mv, out),
                    None => out.push(format!("{path}.{key}: missing from measured output")),
                }
            }
            for key in m.keys().filter(|k| !g.contains_key(*k)) {
                out.push(format!("{path}.{key}: not in the golden record"));
            }
        }
        (Value::Array(g), Value::Array(m)) => {
            if g.len() != m.len() {
                out.push(format!(
                    "{path}: golden has {} elements, measured has {}",
                    g.len(),
                    m.len()
                ));
            } else {
                for (i, (gv, mv)) in g.iter().zip(m).enumerate() {
                    diff_values(&format!("{path}[{i}]"), gv, mv, out);
                }
            }
        }
        _ => {
            if golden != measured {
                out.push(format!("{path}: golden {golden} != measured {measured}"));
            }
        }
    }
}

fn bless(measured: &Value) {
    let json = serde_json::to_string_pretty(measured).expect("golden record serializes");
    let path = Path::new(GOLDEN_PATH);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("golden directory is creatable");
    }
    std::fs::write(path, &json).expect("golden record is writable");
    let reread: Value = serde_json::from_str(&json).expect("golden record re-parses");
    assert_eq!(
        &reread, measured,
        "golden record did not survive serialization (non-finite value?)"
    );
    eprintln!("golden_backends: BLESSED new golden record at {GOLDEN_PATH}");
}

#[test]
fn int8_divergence_matches_the_golden_record() {
    let measured = measured_value();
    let path = Path::new(GOLDEN_PATH);
    if std::env::var_os("GOLDEN_BLESS").is_some() || !path.exists() {
        bless(&measured);
        return;
    }
    let raw = std::fs::read_to_string(path).expect("golden record is readable");
    let golden: Value = serde_json::from_str(&raw).expect("golden record parses");
    let mut diffs = Vec::new();
    diff_values("backends", &golden, &measured, &mut diffs);
    assert!(
        diffs.is_empty(),
        "int8 numerics diverged from the golden record in {} place(s):\n  {}\n\n\
         If this change is *supposed* to move int8 numerics, re-bless with\n  \
         GOLDEN_BLESS=1 cargo test --test golden_backends\n\
         and commit the updated tests/golden/backends_int8.json.",
        diffs.len(),
        diffs.join("\n  ")
    );
}

#[test]
fn int8_divergence_stays_within_hard_bounds() {
    // Independent of any blessed record: int8 must quantize (nonzero
    // divergence) without wrecking either the logits or the end metrics.
    let m = measured();
    for (name, div) in &m.divergence {
        assert!(*div > 0.0, "{name}: int8 produced bit-identical logits");
        assert!(*div < 0.5, "{name}: int8 divergence {div} out of bounds");
    }
    let d_acc = (m.int8_score.accuracy - m.f32_score.accuracy).abs();
    let d_f1 = (m.int8_score.f1 - m.f32_score.f1).abs();
    assert!(d_acc <= 0.2, "int8 accuracy delta {d_acc} out of bounds");
    assert!(d_f1 <= 0.25, "int8 F1 delta {d_f1} out of bounds");
    assert!(
        m.f32_score.accuracy > 0.8,
        "f32 baseline too weak ({}) for the delta to mean anything",
        m.f32_score.accuracy
    );
}
