//! The cluster robustness matrix.
//!
//! Every test here compares against the same oracle: a cluster on a
//! reliable network that ran the same workload. Under seeded loss,
//! duplication, delay/reordering, link partitions, member crashes,
//! disk-losing destruction and injected divergence, the cluster must
//! converge to *bit-identical* serving state — same registry, same
//! generation stamps, same prediction bits — or degrade through typed
//! errors, never through silently wrong answers.

mod common;

use clear_cluster::{ClusterError, Envelope, FaultProfile, Message};
use clear_durable::{WalOp, WalRecord};
use common::{
    apply, build_cluster, fingerprint, fixture, maps_of, nan_map, prediction_key, run_script,
    settle, ScriptOp, SCRIPT,
};

const MEMBERS: [usize; 3] = [0, 1, 2];

/// The oracle: reliable network, full script, settled replication.
fn reference() -> Vec<String> {
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 99);
    run_script(&mut c, f);
    settle(&mut c);
    fingerprint(&mut c, f)
}

#[test]
fn seeded_fault_schedules_converge_bit_identical_to_reliable() {
    let f = fixture();
    let oracle = reference();
    let matrix: [(&str, FaultProfile); 5] = [
        (
            "loss",
            FaultProfile {
                loss: 0.3,
                duplicate: 0.0,
                delay: 0.0,
                max_delay_ticks: 0,
                reorder: 0.0,
            },
        ),
        (
            "duplication",
            FaultProfile {
                loss: 0.0,
                duplicate: 0.5,
                delay: 0.0,
                max_delay_ticks: 0,
                reorder: 0.0,
            },
        ),
        (
            "delay",
            FaultProfile {
                loss: 0.0,
                duplicate: 0.0,
                delay: 0.6,
                max_delay_ticks: 5,
                reorder: 0.0,
            },
        ),
        (
            "reordering",
            FaultProfile {
                loss: 0.0,
                duplicate: 0.0,
                delay: 0.0,
                max_delay_ticks: 0,
                reorder: 0.9,
            },
        ),
        ("hostile", FaultProfile::hostile()),
    ];
    for (name, profile) in matrix {
        for seed in [1, 2, 3] {
            let mut c = build_cluster(&MEMBERS, profile, seed);
            run_script(&mut c, f);
            settle(&mut c);
            for p in 0..c.partition_count() {
                assert_eq!(c.lag_of(p), 0, "{name}/seed {seed}: partition {p} lags");
            }
            assert_eq!(
                fingerprint(&mut c, f),
                oracle,
                "{name}/seed {seed}: serving state diverged from the reliable oracle"
            );
            // The followers themselves must hold identical state, not
            // just identical acks: kill two of three members and serve
            // everything from whatever survives.
            c.kill_member(0).expect("first crash fails over");
            c.kill_member(1).expect("second crash fails over");
            assert_eq!(
                fingerprint(&mut c, f),
                oracle,
                "{name}/seed {seed}: survivors serve different bits after total failover"
            );
        }
    }
}

#[test]
fn every_single_member_crash_fails_over_bit_identically() {
    let f = fixture();
    let oracle = reference();
    for victim in MEMBERS {
        let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 7);
        run_script(&mut c, f);
        settle(&mut c);
        c.kill_member(victim).expect("crash handled");
        for p in 0..c.partition_count() {
            let leader = c.leader_of_partition(p).expect("every partition keeps a leader");
            assert!(c.is_up(leader), "partition {p} leader is dead after failover");
            assert_ne!(leader, victim);
        }
        assert_eq!(
            fingerprint(&mut c, f),
            oracle,
            "victim {victim}: promoted followers serve different bits"
        );
        // The restarted member rejoins (recovering from its surviving
        // disk) without disturbing served state.
        c.restart_member(victim).expect("restart handled");
        settle(&mut c);
        assert_eq!(fingerprint(&mut c, f), oracle, "victim {victim}: restart changed bits");
    }
}

#[test]
fn leader_killed_mid_traffic_promotes_follower_with_generations_intact() {
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 31);
    // First half of the workload: bob ends up personalized.
    for op in &SCRIPT[..6] {
        apply(&mut c, f, *op).expect("first half applies");
    }
    settle(&mut c);
    let bob_generation = c.generation_of("bob").expect("bob is onboarded");
    assert!(c.is_personalized("bob").expect("bob is reachable"));
    let partition = c.partition_of("bob");
    let old_leader = c.leader_of_partition(partition).expect("partition has a leader");

    c.kill_member(old_leader).expect("mid-traffic crash handled");
    let new_leader = c.leader_of_partition(partition).expect("failover promoted someone");
    assert_ne!(new_leader, old_leader);
    assert!(c.is_up(new_leader));

    // The promoted follower carries bob's generation stamp and adopted
    // personalized weights — caught up via snapshot + LSN replay, not
    // retraining.
    assert_eq!(c.generation_of("bob").expect("bob survives failover"), bob_generation);
    assert!(c.is_personalized("bob").expect("bob survives failover"));

    // Traffic continues through the promoted leader.
    for op in &SCRIPT[6..] {
        apply(&mut c, f, *op).expect("second half applies after failover");
    }
    settle(&mut c);

    // End state matches a cluster that never crashed at all.
    assert_eq!(fingerprint(&mut c, f), reference());
    assert_eq!(c.generation_of("bob").expect("bob still served"), bob_generation);
}

#[test]
fn partitioned_link_blocks_replication_with_typed_timeout_then_heals() {
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 11);
    run_script(&mut c, f);
    settle(&mut c);
    let partition = c.partition_of("amy");
    let leader = c.leader_of_partition(partition).expect("leader");
    let followers = c.followers_of_partition(partition);
    assert!(!followers.is_empty(), "partition has followers");

    // Cut the leader off from *every* follower: with a write quorum of
    // one, any single surviving link would satisfy the quorum.
    for &follower in &followers {
        c.net_mut().partition_link(leader, follower);
    }
    let retries_before = c.retries_of(partition);
    // A mutation on the cut partition commits locally but cannot ship.
    c.predict("amy", &[nan_map(f)]).expect("mutation still commits on the leader");
    assert!(c.lag_of(partition) > 0, "unshipped records must show as lag");
    assert!(
        c.retries_of(partition) > retries_before,
        "the shipping path must have retried before giving up"
    );
    match c.flush() {
        Err(ClusterError::ReplicationTimeout { partition: p, lag }) => {
            assert_eq!(p, partition);
            assert!(lag >= 1);
        }
        other => panic!("expected ReplicationTimeout, got {other:?}"),
    }

    c.net_mut().heal_all();
    settle(&mut c);
    assert_eq!(c.lag_of(partition), 0, "healed link drains the backlog");
}

#[test]
fn destroyed_lagging_leader_degrades_readonly_until_force_promote() {
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 13);
    run_script(&mut c, f);
    settle(&mut c);
    let partition = c.partition_of("amy");
    let leader = c.leader_of_partition(partition).expect("leader");
    let followers = c.followers_of_partition(partition);
    assert!(!followers.is_empty(), "partition has followers");
    let amy_probe: Vec<String> = c
        .predict("amy", &maps_of(f, 0, 5, 7))
        .expect("amy served on the healthy path")
        .iter()
        .map(prediction_key)
        .collect();

    // Cut replication to every follower, commit one more record on the
    // leader, then lose the leader *and its disk*: all followers are now
    // behind an unrecoverable leader.
    for &follower in &followers {
        c.net_mut().partition_link(leader, follower);
    }
    c.predict("amy", &[nan_map(f)]).expect("quarantine commits on the leader");
    assert!(c.lag_of(partition) > 0);
    c.destroy_member(leader).expect("destruction handled");
    assert_eq!(
        c.leader_of_partition(partition),
        None,
        "a lagging follower must not be silently promoted over lost acknowledged writes"
    );

    // Degraded mode: mutations are typed errors, reads flow read-only
    // from the follower with identical bits.
    match c.personalize("amy", &common::labeled_of(f, 0, 0, 2), &f.config.finetune) {
        Err(ClusterError::PartitionUnavailable { partition: p }) => assert_eq!(p, partition),
        other => panic!("expected PartitionUnavailable, got {other:?}"),
    }
    let readonly: Vec<String> = c
        .predict("amy", &maps_of(f, 0, 5, 7))
        .expect("reads degrade to the follower")
        .iter()
        .map(prediction_key)
        .collect();
    assert_eq!(readonly, amy_probe, "read-only serving must not change bits");

    // The operator accepts the loss explicitly; mutations flow again.
    c.net_mut().heal_all();
    c.force_promote(partition).expect("force promotion");
    assert!(c.leader_of_partition(partition).is_some());
    c.predict("amy", &[nan_map(f)]).expect("mutations flow after promotion");
    settle(&mut c);
    assert_eq!(c.lag_of(partition), 0);
}

#[test]
fn diverging_follower_latches_and_recovers_by_reseed() {
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 17);
    run_script(&mut c, f);
    settle(&mut c);
    let partition = c.partition_of("bob");
    let leader = c.leader_of_partition(partition).expect("leader");
    let follower = c.follower_of_partition(partition).expect("follower");

    // Inject a frame that contradicts the follower's state: a
    // quarantine for a user it has never onboarded, at exactly the next
    // expected LSN (so it is divergence, not a gap).
    let garbage = WalRecord {
        lsn: c.acked_of(partition) + 1,
        op: WalOp::Quarantine {
            user: "never-onboarded".to_string(),
            count: 1,
        },
    };
    c.net_mut().send(Envelope {
        from: leader,
        to: follower,
        msg: Message::Ship {
            partition,
            records: vec![garbage],
        },
    });
    c.pump();
    assert!(
        c.is_latched(follower, partition),
        "the follower must latch itself on divergence"
    );
    match c.flush() {
        Err(ClusterError::FollowerDiverged {
            partition: p,
            member,
        }) => {
            assert_eq!(p, partition);
            assert_eq!(member, follower);
        }
        other => panic!("expected FollowerDiverged, got {other:?}"),
    }

    // The leader keeps serving and accepting mutations; replication to
    // the latched follower is simply suspended.
    c.predict("bob", &[nan_map(f)]).expect("leader still serves mutations");

    // Reseeding from a leader snapshot clears the latch and catches up.
    c.reseed_follower(partition).expect("reseed");
    let reseeded = c.follower_of_partition(partition).expect("a follower is back");
    assert!(!c.is_latched(reseeded, partition));
    settle(&mut c);
    assert_eq!(c.lag_of(partition), 0);

    // The injected garbage never contaminated durable state: kill the
    // leader, forcing the reseeded follower to take over, and it must
    // serve the leader's exact bits (garbage-free, including the
    // post-latch mutation it caught up on).
    let before = fingerprint(&mut c, f);
    c.kill_member(c.leader_of_partition(partition).expect("leader")).expect("crash");
    assert_eq!(fingerprint(&mut c, f), before, "reseeded follower diverges from leader");
}

#[test]
fn migration_and_member_addition_move_partitions_without_changing_bits() {
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 19);
    run_script(&mut c, f);
    settle(&mut c);
    let before = fingerprint(&mut c, f);

    // Explicit migration: leadership moves, the outgoing leader stays on
    // as the caught-up follower, bits do not move.
    let partition = c.partition_of("amy");
    let from = c.leader_of_partition(partition).expect("leader");
    let to = MEMBERS
        .iter()
        .copied()
        .find(|&m| m != from)
        .expect("another member exists");
    c.migrate_partition(partition, to).expect("migration");
    assert_eq!(c.leader_of_partition(partition), Some(to));
    assert_eq!(c.follower_of_partition(partition), Some(from));
    assert_eq!(fingerprint(&mut c, f), before, "migration changed served bits");

    // Mutations keep flowing through the new leader and replicate back
    // to the old one.
    c.predict("amy", &[nan_map(f)]).expect("post-migration mutation");
    settle(&mut c);
    assert_eq!(c.lag_of(partition), 0);
    let with_quarantine = fingerprint(&mut c, f);

    // Adding a member moves only the partitions whose ring owner became
    // the newcomer — the consistent-hash minimal-movement invariant at
    // the cluster level.
    let leaders_before: Vec<_> = (0..c.partition_count())
        .map(|p| c.leader_of_partition(p))
        .collect();
    c.add_member(3).expect("member addition");
    for p in 0..c.partition_count() {
        let now = c.leader_of_partition(p).expect("leader");
        if Some(now) != leaders_before[p] {
            assert_eq!(now, 3, "partition {p} moved to a member that did not join");
        }
    }
    settle(&mut c);
    assert_eq!(
        fingerprint(&mut c, f),
        with_quarantine,
        "membership change altered served bits"
    );
}

#[test]
fn deferred_onboarding_spans_partitions_identically() {
    // Guard against partition-routing bugs in the deferral path: a user
    // whose onboarding is buffered across two calls must behave exactly
    // as on a single engine, wherever their partition lives.
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::hostile(), 41);
    apply(&mut c, f, ScriptOp::Onboard("amy", 0, 0, 2)).expect("deferred");
    assert_eq!(c.pending_maps("amy").expect("amy reachable"), 2);
    assert!(c.cluster_of("amy").is_err(), "not assigned yet");
    apply(&mut c, f, ScriptOp::Onboard("amy", 0, 2, 5)).expect("assigned");
    assert_eq!(c.pending_maps("amy").expect("amy reachable"), 0);
    assert!(c.cluster_of("amy").is_ok());
    settle(&mut c);
    assert_eq!(c.lag_of(c.partition_of("amy")), 0);
}
