//! Cold-start onboarding: streaming new users into a deployed system.
//!
//! A CLEAR system is trained once on an initial population; then a second
//! wave of brand-new users arrives. For each newcomer the example shows
//! the three accuracy levels a product would see:
//!
//! 1. wrong-cluster model (what a random assignment would give),
//! 2. unsupervised cold-start assignment (no labels at all),
//! 3. after fine-tuning with a small labeled budget.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cold_start_onboarding
//! ```

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::pipeline::CloudTraining;
use clear::nn::train;
use clear::sim::SubjectId;

fn main() {
    let mut config = ClearConfig::quick(19);
    // A slightly larger cohort so the held-out wave has 4 users.
    config.cohort.subjects_per_archetype = [3, 3, 3, 3];
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let (wave, initial) = subjects.split_at(subjects.len() - 4);
    // `wave` is everything *before* the last 4; swap so newcomers are last 4.
    let (initial, wave) = (wave, initial);
    let newcomers: Vec<SubjectId> = wave.to_vec();

    println!(
        "initial population: {} users; onboarding {} newcomers\n",
        initial.len(),
        newcomers.len()
    );
    let cloud = CloudTraining::fit(&data, initial, &config);

    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>12}",
        "user", "cluster", "wrong-cluster", "cold-start", "fine-tuned"
    );
    for &user in &newcomers {
        let indices = data.indices_of(user);
        let ca_n = ((indices.len() as f32 * config.ca_fraction).ceil() as usize).max(1);
        let assigned = cloud.assign_user(&data, &indices[..ca_n]);
        let rest = &indices[ca_n..];

        // Wrong cluster: mean accuracy over the other clusters' models.
        let mut wrong = 0.0f32;
        let mut n = 0;
        for c in 0..cloud.cluster_count() {
            if c != assigned {
                wrong += cloud.evaluate(&data, c, rest).accuracy;
                n += 1;
            }
        }
        let wrong = wrong / n.max(1) as f32;

        let cold = cloud.evaluate(&data, assigned, rest).accuracy;

        let ft_n = ((indices.len() as f32 * config.ft_fraction).ceil() as usize).max(1);
        let ft_ds = cloud.user_dataset(&data, &rest[..ft_n]);
        let test_ds = cloud.user_dataset(&data, &rest[ft_n..]);
        let personalized = cloud.fine_tune(assigned, &ft_ds, &config.finetune);
        let tuned = train::evaluate(&personalized, &test_ds).accuracy;

        println!(
            "{:<8} {:>8} {:>13.1}% {:>13.1}% {:>11.1}%",
            user.to_string(),
            assigned,
            wrong * 100.0,
            cold * 100.0,
            tuned * 100.0
        );
    }
    println!(
        "\ncold-start assignment recovers most of the matched-cluster accuracy\n\
         without a single label; fine-tuning closes the remaining gap."
    );
}
