//! Finite-difference verification of the full backward pass.
//!
//! For a tiny CNN-LSTM, every parameter's analytic gradient is compared to
//! a central finite difference of the loss. This pins down the correctness
//! of the convolution, pooling routing, sequence conversion, BPTT and
//! dense backward passes simultaneously — if any single chain-rule term
//! were wrong, the comparison would fail for the parameters upstream of it.

use clear_nn::loss::cross_entropy;
use clear_nn::network::{cnn_lstm, Network};
use clear_nn::tensor::Tensor;
use clear_nn::workspace::Workspace;

fn loss_of(net: &Network, ws: &mut Workspace, x: &Tensor, target: usize) -> f32 {
    let logits = net.forward(x, false, ws);
    cross_entropy(logits, target).0
}

fn analytic_gradients(net: &Network, ws: &mut Workspace, x: &Tensor, target: usize) -> Vec<f32> {
    let logits = net.forward(x, false, ws);
    let (_, grad) = cross_entropy(logits, target);
    ws.zero_grads();
    net.backward(&grad, ws);
    ws.grads_flat()
}

#[test]
fn full_network_gradients_match_finite_differences() {
    let mut net = cnn_lstm(26, 5, 2, 1234);
    let mut ws = Workspace::new();
    let x = Tensor::from_vec(
        &[1, 26, 5],
        (0..130)
            .map(|v| (((v * 37) % 61) as f32 - 30.0) / 30.0)
            .collect(),
    );
    let target = 1usize;

    let analytic = analytic_gradients(&net, &mut ws, &x, target);
    let params = net.parameters_flat();
    assert_eq!(analytic.len(), params.len());

    // Checking all ~70k parameters with finite differences is O(n) forward
    // passes; probe a deterministic spread instead, covering every layer.
    let n = params.len();
    let probes: Vec<usize> = (0..60).map(|i| (i * (n / 60)).min(n - 1)).collect();
    let eps = 3e-3f32;
    let mut checked = 0;
    for &idx in &probes {
        let mut plus = params.clone();
        plus[idx] += eps;
        net.set_parameters_flat(&plus);
        let lp = loss_of(&net, &mut ws, &x, target);

        let mut minus = params.clone();
        minus[idx] -= eps;
        net.set_parameters_flat(&minus);
        let lm = loss_of(&net, &mut ws, &x, target);

        net.set_parameters_flat(&params);
        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic[idx];
        let denom = a.abs().max(numeric.abs()).max(1e-2);
        assert!(
            (a - numeric).abs() / denom < 0.12,
            "param {idx}: analytic {a} vs numeric {numeric}"
        );
        checked += 1;
    }
    assert_eq!(checked, probes.len());
}

#[test]
fn input_gradient_matches_finite_differences() {
    // Also verify the gradient flowing back to the *input*, which exercises
    // the data path of every backward pass (not just the weight path). The
    // workspace exposes it directly as `input_grad()`.
    let net = cnn_lstm(26, 5, 2, 99);
    let mut ws = Workspace::new();
    let base: Vec<f32> = (0..130)
        .map(|v| (((v * 13) % 41) as f32 - 20.0) / 20.0)
        .collect();
    let x = Tensor::from_vec(&[1, 26, 5], base.clone());
    let target = 0usize;

    let logits = net.forward(&x, false, &mut ws);
    let (_, grad) = cross_entropy(logits, target);
    ws.zero_grads();
    net.backward(&grad, &mut ws);
    let dinput = ws.input_grad().clone();
    assert_eq!(dinput.shape(), x.shape());

    let eps = 3e-3f32;
    for idx in [0usize, 7, 31, 64, 100, 129] {
        let mut plus = base.clone();
        plus[idx] += eps;
        let lp = loss_of(&net, &mut ws, &Tensor::from_vec(&[1, 26, 5], plus), target);
        let mut minus = base.clone();
        minus[idx] -= eps;
        let lm = loss_of(&net, &mut ws, &Tensor::from_vec(&[1, 26, 5], minus), target);
        let numeric = (lp - lm) / (2.0 * eps);
        let a = dinput.as_slice()[idx];
        let denom = a.abs().max(numeric.abs()).max(1e-2);
        assert!(
            (a - numeric).abs() / denom < 0.12,
            "input {idx}: analytic {a} vs numeric {numeric}"
        );
    }
}
