//! # clear-dsp — signal-processing substrate for CLEAR
//!
//! This crate provides every numerical signal-processing primitive the CLEAR
//! reproduction needs to turn raw physiological signals (blood volume pulse,
//! galvanic skin response, skin temperature) into the 123 scalar features of
//! the paper's 2D feature maps:
//!
//! * descriptive statistics ([`stats`]),
//! * window functions ([`window`]) and a radix-2 FFT ([`fft`]),
//! * Welch power-spectral-density estimation and band power ([`psd`]),
//! * IIR biquad filters with Butterworth designs ([`filter`]),
//! * peak/event detection for heart beats and skin-conductance responses
//!   ([`peaks`]),
//! * entropy and non-linear complexity measures ([`entropy`]),
//! * heart-rate-variability metrics, including Poincaré geometry ([`hrv`]),
//! * resampling and detrending helpers ([`resample`]).
//!
//! All routines operate on `f32` slices, are deterministic, and allocate only
//! when a new series must be returned.
//!
//! ## Example
//!
//! ```
//! use clear_dsp::{fft, stats};
//!
//! // A pure 5 Hz tone sampled at 64 Hz has its spectral mass in bin 5.
//! let fs = 64.0;
//! let signal: Vec<f32> = (0..64)
//!     .map(|n| (2.0 * std::f32::consts::PI * 5.0 * n as f32 / fs).sin())
//!     .collect();
//! let spectrum = fft::magnitude_spectrum(&signal);
//! let peak_bin = stats::argmax(&spectrum[..32]).unwrap();
//! assert_eq!(peak_bin, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entropy;
pub mod fft;
pub mod filter;
pub mod hrv;
pub mod peaks;
pub mod psd;
pub mod resample;
pub mod stats;
pub mod window;

pub use fft::Complex32;

/// Errors produced by `clear-dsp` routines.
///
/// Every fallible public function in this crate returns `Result<_, DspError>`;
/// the error messages are lowercase and concise per Rust API guidelines.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// The input series was empty but the operation needs at least one sample.
    EmptyInput,
    /// The input length is invalid for the operation (e.g. FFT length not a
    /// power of two, or fewer samples than a required minimum).
    BadLength {
        /// What the routine expected of the length.
        expected: &'static str,
        /// The length it actually received.
        actual: usize,
    },
    /// A parameter was outside its valid domain.
    BadParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
}

impl std::fmt::Display for DspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input series is empty"),
            DspError::BadLength { expected, actual } => {
                write!(f, "invalid input length {actual}, expected {expected}")
            }
            DspError::BadParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_and_nonempty() {
        let errs = [
            DspError::EmptyInput,
            DspError::BadLength {
                expected: "a power of two",
                actual: 7,
            },
            DspError::BadParameter {
                name: "cutoff",
                reason: "must be below the nyquist frequency",
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
