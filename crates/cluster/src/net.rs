//! In-process member-to-member transport with deterministic fault
//! injection.
//!
//! All replication traffic flows through the [`Transport`] trait, so the
//! cluster logic never knows whether it is running over a perfect
//! network or a hostile one. [`SimNet`] is the only implementation: a
//! tick-based, seeded simulator that can drop, duplicate, delay,
//! reorder and partition messages. The same seed and the same call
//! sequence always produce the same delivery schedule, which is what
//! lets the fault-matrix tests assert *bit-identical* convergence under
//! faults rather than merely "eventual" convergence.

use clear_durable::WalRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

use crate::MemberId;

/// A replication message between cluster members.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Leader → follower: a contiguous suffix of the partition's WAL.
    Ship {
        /// Partition the records belong to.
        partition: usize,
        /// WAL records, ascending contiguous LSNs.
        records: Vec<WalRecord>,
    },
    /// Follower → leader: how far the follower has durably applied.
    ShipAck {
        /// Partition being acknowledged.
        partition: usize,
        /// Highest LSN the follower has applied and logged.
        applied_through: u64,
        /// The follower detected divergence and latched itself; the
        /// leader must stop shipping and reseed it from a snapshot.
        diverged: bool,
    },
    /// Leader → follower: report your per-user state fingerprints (one
    /// anti-entropy scrub probe).
    ScrubRequest {
        /// Partition being scrubbed.
        partition: usize,
    },
    /// Follower → leader: the follower's durable LSN and per-user state
    /// fingerprints at a consistent cut, for the leader to compare
    /// against its own.
    ScrubReport {
        /// Partition being scrubbed.
        partition: usize,
        /// The follower's durable LSN at the fingerprint cut.
        applied_through: u64,
        /// Sorted `(key, checksum)` pairs (see
        /// `clear_serve::ServeEngine::user_fingerprints`).
        fingerprints: Vec<(String, u32)>,
    },
}

/// An addressed message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending member.
    pub from: MemberId,
    /// Receiving member.
    pub to: MemberId,
    /// Payload.
    pub msg: Message,
}

/// The wire the cluster runs on. Single-threaded and tick-based: `send`
/// enqueues, `tick` advances simulated time, `poll` drains a member's
/// inbox.
pub trait Transport {
    /// Submits an envelope for delivery (possibly lost, duplicated,
    /// delayed or blocked, depending on the implementation).
    fn send(&mut self, env: Envelope);
    /// Advances simulated time one tick, releasing delayed messages.
    fn tick(&mut self);
    /// Drains every envelope currently deliverable to `member`.
    fn poll(&mut self, member: MemberId) -> Vec<Envelope>;
    /// Blocks both directions of the `a`↔`b` link (a network partition).
    fn partition_link(&mut self, a: MemberId, b: MemberId);
    /// Unblocks the `a`↔`b` link.
    fn heal_link(&mut self, a: MemberId, b: MemberId);
    /// Unblocks every link.
    fn heal_all(&mut self);
}

/// Fault probabilities for [`SimNet`]. All probabilities are per
/// envelope and independent; `0.0` everywhere yields a reliable,
/// in-order network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability an envelope is silently dropped.
    pub loss: f64,
    /// Probability an envelope is delivered twice.
    pub duplicate: f64,
    /// Probability an envelope is held back `1..=max_delay_ticks` ticks
    /// (one source of reordering relative to later sends).
    pub delay: f64,
    /// Maximum hold-back for a delayed envelope, in ticks.
    pub max_delay_ticks: u64,
    /// Probability an envelope is inserted at a seeded position *ahead*
    /// of messages already queued for the recipient, instead of at the
    /// back — same-tick reordering, independent of `delay`.
    pub reorder: f64,
}

impl FaultProfile {
    /// No faults: every envelope arrives exactly once, in send order.
    pub fn reliable() -> Self {
        Self {
            loss: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_ticks: 0,
            reorder: 0.0,
        }
    }

    /// A hostile profile exercising every fault class at once.
    pub fn hostile() -> Self {
        Self {
            loss: 0.2,
            duplicate: 0.15,
            delay: 0.3,
            max_delay_ticks: 4,
            reorder: 0.25,
        }
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::reliable()
    }
}

/// Deterministic simulated network: per-member FIFO inboxes, a delay
/// queue keyed by delivery tick, a blocked-link set, and a seeded RNG
/// driving the fault rolls. Determinism contract: the same seed, profile
/// and call sequence produce the same delivery schedule.
pub struct SimNet {
    rng: SmallRng,
    profile: FaultProfile,
    now: u64,
    seq: u64,
    inboxes: HashMap<MemberId, VecDeque<Envelope>>,
    /// `(deliver_at, seq, env)`; drained in `(deliver_at, seq)` order so
    /// release order never depends on map iteration.
    delayed: Vec<(u64, u64, Envelope)>,
    /// Normalized `(min, max)` member pairs whose link is down.
    blocked: HashSet<(MemberId, MemberId)>,
}

fn link(a: MemberId, b: MemberId) -> (MemberId, MemberId) {
    (a.min(b), a.max(b))
}

impl SimNet {
    /// A simulated network with the given fault profile and seed.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            profile,
            now: 0,
            seq: 0,
            inboxes: HashMap::new(),
            delayed: Vec::new(),
            blocked: HashSet::new(),
        }
    }

    /// A fault-free network (still tick-based, still partitionable).
    pub fn reliable(seed: u64) -> Self {
        Self::new(seed, FaultProfile::reliable())
    }

    /// Current simulated time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Envelopes currently held in the delay queue.
    pub fn delayed_len(&self) -> usize {
        self.delayed.len()
    }

    fn enqueue(&mut self, env: Envelope) {
        let inbox = self.inboxes.entry(env.to).or_default();
        if !inbox.is_empty()
            && self.profile.reorder > 0.0
            && self.rng.gen::<f64>() < self.profile.reorder
        {
            clear_obs::counter_add(clear_obs::counters::CLUSTER_NET_REORDERED, 1);
            let at = self.rng.gen_range(0..inbox.len());
            inbox.insert(at, env);
        } else {
            inbox.push_back(env);
        }
    }
}

impl Transport for SimNet {
    fn send(&mut self, env: Envelope) {
        clear_obs::counter_add(clear_obs::counters::CLUSTER_NET_MESSAGES, 1);
        if self.blocked.contains(&link(env.from, env.to)) {
            clear_obs::counter_add(clear_obs::counters::CLUSTER_NET_DROPPED, 1);
            return;
        }
        if self.profile.loss > 0.0 && self.rng.gen::<f64>() < self.profile.loss {
            clear_obs::counter_add(clear_obs::counters::CLUSTER_NET_DROPPED, 1);
            return;
        }
        let copies = if self.profile.duplicate > 0.0 && self.rng.gen::<f64>() < self.profile.duplicate
        {
            clear_obs::counter_add(clear_obs::counters::CLUSTER_NET_DUPLICATED, 1);
            2
        } else {
            1
        };
        for _ in 0..copies {
            if self.profile.delay > 0.0
                && self.profile.max_delay_ticks > 0
                && self.rng.gen::<f64>() < self.profile.delay
            {
                clear_obs::counter_add(clear_obs::counters::CLUSTER_NET_DELAYED, 1);
                let hold = self.rng.gen_range(1..=self.profile.max_delay_ticks);
                self.seq += 1;
                self.delayed.push((self.now + hold, self.seq, env.clone()));
            } else {
                self.enqueue(env.clone());
            }
        }
    }

    fn tick(&mut self) {
        self.now += 1;
        if self.delayed.is_empty() {
            return;
        }
        self.delayed.sort_by_key(|&(at, seq, _)| (at, seq));
        let due = self.delayed.partition_point(|&(at, _, _)| at <= self.now);
        for (_, _, env) in self.delayed.drain(..due) {
            self.inboxes.entry(env.to).or_default().push_back(env);
        }
    }

    fn poll(&mut self, member: MemberId) -> Vec<Envelope> {
        self.inboxes
            .get_mut(&member)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    fn partition_link(&mut self, a: MemberId, b: MemberId) {
        self.blocked.insert(link(a, b));
    }

    fn heal_link(&mut self, a: MemberId, b: MemberId) {
        self.blocked.remove(&link(a, b));
    }

    fn heal_all(&mut self) {
        self.blocked.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_durable::{WalOp, WalRecord};

    fn ship(from: MemberId, to: MemberId, lsn: u64) -> Envelope {
        Envelope {
            from,
            to,
            msg: Message::Ship {
                partition: 0,
                records: vec![WalRecord {
                    lsn,
                    op: WalOp::Offboard {
                        user: format!("u{lsn}"),
                    },
                }],
            },
        }
    }

    fn lsn_of(env: &Envelope) -> u64 {
        match &env.msg {
            Message::Ship { records, .. } => records[0].lsn,
            other => panic!("expected ship, got {other:?}"),
        }
    }

    #[test]
    fn reliable_net_delivers_in_order() {
        let mut net = SimNet::reliable(7);
        for lsn in 1..=5 {
            net.send(ship(0, 1, lsn));
        }
        net.tick();
        let got: Vec<u64> = net.poll(1).iter().map(lsn_of).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        assert!(net.poll(1).is_empty(), "poll drains");
        assert!(net.poll(0).is_empty(), "nothing addressed to sender");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| -> Vec<u64> {
            let mut net = SimNet::new(seed, FaultProfile::hostile());
            let mut got = Vec::new();
            for lsn in 1..=40 {
                net.send(ship(0, 1, lsn));
            }
            for _ in 0..10 {
                net.tick();
                got.extend(net.poll(1).iter().map(lsn_of));
            }
            got
        };
        assert_eq!(run(42), run(42), "same seed, same delivery schedule");
        assert_ne!(run(42), run(43), "different seed, different schedule");
    }

    #[test]
    fn hostile_profile_loses_duplicates_or_delays() {
        let mut net = SimNet::new(1, FaultProfile::hostile());
        for lsn in 1..=200 {
            net.send(ship(0, 1, lsn));
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            net.tick();
            got.extend(net.poll(1).iter().map(lsn_of));
        }
        assert_ne!(
            got,
            (1..=200).collect::<Vec<u64>>(),
            "a hostile net must not deliver exactly-once in order"
        );
        assert!(!got.is_empty(), "but some traffic gets through");
        assert_eq!(net.delayed_len(), 0, "enough ticks drain every delay");
    }

    #[test]
    fn delayed_envelopes_arrive_after_their_hold() {
        let mut net = SimNet::new(
            3,
            FaultProfile {
                loss: 0.0,
                duplicate: 0.0,
                delay: 1.0,
                max_delay_ticks: 3,
                reorder: 0.0,
            },
        );
        net.send(ship(0, 1, 1));
        assert!(net.poll(1).is_empty(), "held back before any tick");
        let mut got = Vec::new();
        for _ in 0..3 {
            net.tick();
            got.extend(net.poll(1).iter().map(lsn_of));
        }
        assert_eq!(got, vec![1], "released within max_delay_ticks");
    }

    #[test]
    fn reordering_shuffles_but_never_loses() {
        let profile = FaultProfile {
            loss: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_ticks: 0,
            reorder: 1.0,
        };
        let run = |seed: u64| -> Vec<u64> {
            let mut net = SimNet::new(seed, profile);
            for lsn in 1..=30 {
                net.send(ship(0, 1, lsn));
            }
            net.tick();
            net.poll(1).iter().map(lsn_of).collect()
        };
        let got = run(11);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (1..=30).collect::<Vec<u64>>(),
            "reordering must not lose or duplicate"
        );
        assert_ne!(got, sorted, "certain reordering must shuffle 30 sends");
        assert_eq!(run(11), got, "same seed, same shuffle");
    }

    #[test]
    fn partitioned_links_drop_until_healed() {
        let mut net = SimNet::reliable(5);
        net.partition_link(0, 1);
        net.send(ship(0, 1, 1));
        net.send(ship(1, 0, 2)); // blocked both directions
        net.send(ship(0, 2, 3)); // other links unaffected
        net.tick();
        assert!(net.poll(1).is_empty());
        assert!(net.poll(0).is_empty());
        assert_eq!(net.poll(2).len(), 1);
        net.heal_all();
        net.send(ship(0, 1, 4));
        net.tick();
        let got: Vec<u64> = net.poll(1).iter().map(lsn_of).collect();
        assert_eq!(got, vec![4], "healed link delivers again");
    }
}
