//! Seeded chaos: a randomized schedule of member kills, restarts, link
//! partitions, pump bursts and mid-traffic scrubs, interleaved with the
//! scripted workload over a hostile network — after restoring the fleet,
//! the cluster must be bit-identical to a reliable, undisturbed oracle.
//!
//! The schedule is fully deterministic per seed (one LCG drives the
//! events, the same seed drives the simulated network), so any failure
//! reproduces exactly. CI sweeps several seeds via `CLEAR_CHAOS_SEED`;
//! unset, a small built-in set runs.

mod common;

use clear_cluster::{FaultProfile, MemberId, ServeCluster};
use common::{apply, build_cluster, fingerprint, fixture, run_script, settle, SCRIPT};

const MEMBERS: [usize; 3] = [0, 1, 2];
const PARTITIONS: u64 = 4;

/// Deterministic schedule randomness, independent of the network's RNG.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Brings every member back, heals every link and settles replication.
fn restore(c: &mut ServeCluster, downed: &mut Vec<MemberId>) {
    c.net_mut().heal_all();
    for m in downed.drain(..) {
        c.restart_member(m).expect("restart handled");
    }
    settle(c);
}

/// Runs the scripted workload with chaos events injected between ops,
/// restores the fleet, and returns the settled fingerprint.
fn chaos_run(seed: u64) -> Vec<String> {
    let f = fixture();
    let mut c = build_cluster(&MEMBERS, FaultProfile::hostile(), seed);
    let mut rng = Lcg(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut downed: Vec<MemberId> = Vec::new();
    for &op in SCRIPT.iter() {
        match rng.below(8) {
            // At most one member down at a time: single-failure chaos
            // must never need operator intervention (force_promote).
            0 if downed.is_empty() => {
                let victim = MEMBERS[rng.below(3) as usize];
                c.kill_member(victim).expect("crash fails over");
                downed.push(victim);
            }
            1 => {
                if let Some(m) = downed.pop() {
                    c.restart_member(m).expect("restart handled");
                }
            }
            2 => {
                let a = MEMBERS[rng.below(3) as usize];
                let b = MEMBERS[rng.below(3) as usize];
                if a != b {
                    c.net_mut().partition_link(a, b);
                }
            }
            3 => c.net_mut().heal_all(),
            4 => {
                for _ in 0..3 {
                    c.pump();
                }
            }
            // Scrubbing mid-chaos must never corrupt anything; it may
            // legitimately fail (dead leader) or time out (cut links).
            5 => {
                let _ = c.scrub(rng.below(PARTITIONS) as usize);
            }
            _ => {}
        }
        // Kills fail over synchronously, so ops normally still land; the
        // restore-and-retry is the safety net for schedules that corner
        // a partition (e.g. kill while its links are cut).
        if apply(&mut c, f, op).is_err() {
            restore(&mut c, &mut downed);
            apply(&mut c, f, op).expect("op succeeds once the fleet is restored");
        }
    }
    restore(&mut c, &mut downed);
    fingerprint(&mut c, f)
}

#[test]
fn seeded_chaos_schedules_converge_bit_identical_to_the_reliable_oracle() {
    let f = fixture();
    let expected = {
        let mut c = build_cluster(&MEMBERS, FaultProfile::reliable(), 1);
        run_script(&mut c, f);
        settle(&mut c);
        fingerprint(&mut c, f)
    };
    let seeds: Vec<u64> = match std::env::var("CLEAR_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CLEAR_CHAOS_SEED must be a u64")],
        Err(_) => vec![11, 29],
    };
    for seed in seeds {
        assert_eq!(
            chaos_run(seed),
            expected,
            "chaos seed {seed} diverged from the reliable oracle"
        );
    }
}
