//! Regenerates Figure 1: the CLEAR architecture overview, rendered as a
//! traced end-to-end run of the pipeline — cloud stage (feature maps,
//! Global Clustering, per-cluster pre-training) followed by the edge stage
//! (cold-start Cluster Assignment and fine-tuning) for one new user.

use clear_bench::config_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::pipeline::CloudTraining;
use clear_nn::train;
use clear_sim::SubjectId;

fn main() {
    let mut config = config_from_args();
    // The trace runs one full pipeline; the quick profile keeps it snappy
    // unless the user explicitly asked for paper scale.
    if std::env::args().all(|a| a != "--quick") {
        eprintln!("(running at paper scale; pass --quick for a fast trace)");
    }
    config.train.epochs = config.train.epochs.min(8);

    println!("FIGURE 1 — CLEAR architecture, traced end to end\n");
    println!("== cloud stage (offline) ==");
    let t0 = std::time::Instant::now();
    let data = PreparedCohort::prepare(&config);
    println!(
        "[1] feature-map generation: {} recordings -> {} maps of 123 x {} ({:.1?})",
        data.cohort().recordings().len(),
        data.maps().len(),
        data.windows(),
        t0.elapsed()
    );

    let subjects = data.subject_ids();
    let new_user = *subjects.last().expect("cohort has subjects");
    let initial: Vec<SubjectId> = subjects
        .iter()
        .copied()
        .filter(|&s| s != new_user)
        .collect();
    let t1 = std::time::Instant::now();
    let cloud = CloudTraining::fit(&data, &initial, &config);
    println!(
        "[2] global clustering (K = {}): cluster sizes {:?}",
        cloud.cluster_count(),
        (0..cloud.cluster_count())
            .map(|c| cloud.members_of(c).len())
            .collect::<Vec<_>>()
    );
    println!(
        "[3] per-cluster pre-training: {} CNN-LSTM checkpoints ({:.1?})",
        cloud.cluster_count(),
        t1.elapsed()
    );

    println!("\n== edge stage (new user {new_user:?}, cold start) ==");
    let indices = data.indices_of(new_user);
    let ca_n = ((indices.len() as f32 * config.ca_fraction).ceil() as usize).max(1);
    let ca_idx = &indices[..ca_n];
    let assigned = cloud.assign_user(&data, ca_idx);
    println!(
        "[4] cluster assignment from {} unlabeled map(s) ({}% of data): cluster {}",
        ca_n,
        (config.ca_fraction * 100.0) as u32,
        assigned
    );
    let score_before = cloud.evaluate(&data, assigned, &indices[ca_n..]);
    println!(
        "[5] cold-start accuracy without fine-tuning: {:.1} %",
        score_before.accuracy * 100.0
    );

    let ft_n = ((indices.len() as f32 * config.ft_fraction).ceil() as usize).max(1);
    let ft_idx = &indices[ca_n..ca_n + ft_n];
    let test_idx = &indices[ca_n + ft_n..];
    let ft_ds = cloud.user_dataset(&data, ft_idx);
    let test_ds = cloud.user_dataset(&data, test_idx);
    let personalized = cloud.fine_tune(assigned, &ft_ds, &config.finetune);
    let score_after = train::evaluate(&personalized, &test_ds);
    println!(
        "[6] fine-tuning with {} labeled map(s) ({}% of data): {:.1} % on held-out data",
        ft_n,
        (config.ft_fraction * 100.0) as u32,
        score_after.accuracy * 100.0
    );
    println!("\ntotal wall clock: {:.1?}", t0.elapsed());
}
