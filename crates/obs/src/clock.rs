//! Injectable time sources for the metrics registry.
//!
//! Production registries read a monotonic wall clock; tests inject a
//! [`FakeClock`] whose reads advance by a fixed, deterministic step, so
//! snapshots of instrumented code are byte-identical run to run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be thread-safe;
/// reads from different threads need not be globally ordered, only
/// monotone per thread.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) epoch.
    fn now_ns(&self) -> u64;
}

/// The production clock: [`Instant`]-backed, origin at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturate rather than wrap: a process does not live 2^64 ns.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests: every read advances the time by a
/// fixed `step_ns`, so the n-th read observes `start + n * step` no matter
/// when (in real time) it happens. Span durations measured against a
/// `FakeClock` depend only on the *sequence* of reads, never on scheduler
/// or hardware timing — the determinism contract instrumented code is
/// tested under.
#[derive(Debug)]
pub struct FakeClock {
    now: AtomicU64,
    step_ns: u64,
}

impl FakeClock {
    /// A fake clock starting at 0, advancing `step_ns` per read.
    pub fn new(step_ns: u64) -> Self {
        Self {
            now: AtomicU64::new(0),
            step_ns,
        }
    }

    /// Manually advances the clock (on top of the per-read step).
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.step_ns, Ordering::Relaxed) + self.step_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_advances_deterministically() {
        let c = FakeClock::new(100);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.now_ns(), 200);
        c.advance(1_000);
        assert_eq!(c.now_ns(), 1_300);
    }

    #[test]
    fn fake_clock_zero_step_is_frozen() {
        let c = FakeClock::new(0);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
    }
}
