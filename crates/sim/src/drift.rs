//! Population drift: the same cohort, slowly leaving its calibration.
//!
//! The cold-start pipeline clusters a *calibration* population once and
//! serves everyone after it from that frozen geometry. Real populations
//! do not hold still: sensors age (more noise, weaker amplitudes),
//! subjects habituate to the stimulus class (smaller evoked responses)
//! and autonomic baselines shift with season and health. This module
//! generates that failure mode on demand so the lifecycle layer — drift
//! detection, re-clustering, canaried rollout — has something real to
//! detect and repair.
//!
//! A [`DriftScenario`] wraps a [`CohortConfig`] plus a severity and a
//! set of drifted archetypes. [`DriftScenario::phase`] materializes the
//! population at drift time `t ∈ [0, 1]`: the subject roster, the
//! per-recording stimulus randomness and every non-drifted subject are
//! **bit-identical** to [`Cohort::generate`] on the same config — only
//! the drifted subjects' generative parameters move, linearly, toward
//! the shifted regime. `phase(0.0)` therefore reproduces the plain
//! cohort exactly, which is what makes before/after comparisons and
//! stationary-control tests trustworthy.

use crate::archetype::ArchetypeId;
use crate::cohort::{gauss, Cohort, CohortConfig, Recording, SubjectId};
use crate::signals::{synth_bvp, synth_gsr, synth_skt, Evocation};
use crate::subject::SubjectProfile;
use crate::Emotion;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A parameterized drift process over one cohort's population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftScenario {
    /// The calibration-time cohort the population drifts away from.
    pub config: CohortConfig,
    /// How far the shifted regime is from calibration at `t = 1.0`.
    /// `0.0` is a stationary population (every phase bit-identical);
    /// `1.0` is severe enough to degrade gated serving quality.
    pub severity: f32,
    /// Which archetypes drift; the rest stay bit-identical at every
    /// phase, giving the rollout tests their untouched control group.
    pub drifted: [bool; 4],
}

impl DriftScenario {
    /// A scenario in which the named archetypes drift with `severity`.
    pub fn new(config: CohortConfig, severity: f32, drifted_archetypes: &[usize]) -> Self {
        let mut drifted = [false; 4];
        for &a in drifted_archetypes {
            if a < drifted.len() {
                drifted[a] = true;
            }
        }
        Self {
            config,
            severity,
            drifted,
        }
    }

    /// A stationary control: no archetype moves, every phase is
    /// bit-identical to [`Cohort::generate`].
    pub fn stationary(config: CohortConfig) -> Self {
        Self {
            config,
            severity: 0.0,
            drifted: [false; 4],
        }
    }

    /// The population at drift time `t` (clamped to `[0, 1]`).
    ///
    /// Roster order, subject ids, per-subject stimulus seeds and all
    /// non-drifted subjects match [`Cohort::generate`] exactly; drifted
    /// subjects' profiles are moved by [`DriftScenario::shifted`] before
    /// their traces are synthesized.
    pub fn phase(&self, t: f32) -> Cohort {
        let base = Cohort::generate(&self.config);
        let t = t.clamp(0.0, 1.0);
        if t * self.severity == 0.0 {
            return base;
        }
        let subjects: Vec<SubjectProfile> = base
            .subjects()
            .iter()
            .map(|s| self.shifted(s, t))
            .collect();
        let mut recordings = Vec::with_capacity(self.config.total_recordings());
        for subject in &subjects {
            // Same per-subject stimulus stream as `Cohort::generate`:
            // only the generative parameters differ, so a drifted
            // recording is the *same presentation* seen through the
            // shifted physiology.
            let mut srng = SmallRng::seed_from_u64(
                self.config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(subject.id as u64),
            );
            for stim in 0..self.config.recordings_per_subject {
                let emotion = if stim % 2 == 0 {
                    Emotion::Fear
                } else {
                    Emotion::NonFear
                };
                let intensity = (1.0 + 0.15 * gauss(&mut srng)).clamp(0.4, 1.6);
                let evocation = Evocation { emotion, intensity };
                let bvp = synth_bvp(
                    subject,
                    &evocation,
                    self.config.class_overlap,
                    &self.config.signal,
                    &mut srng,
                );
                let gsr = synth_gsr(
                    subject,
                    &evocation,
                    self.config.class_overlap,
                    &self.config.signal,
                    &mut srng,
                );
                let skt = synth_skt(
                    subject,
                    &evocation,
                    self.config.class_overlap,
                    &self.config.signal,
                    &mut srng,
                );
                recordings.push(Recording {
                    subject: SubjectId(subject.id),
                    stimulus: stim,
                    emotion,
                    category: None,
                    intensity,
                    bvp,
                    gsr,
                    skt,
                });
            }
        }
        Cohort::from_parts(self.config.clone(), subjects, recordings)
    }

    /// Whether a subject of `archetype` moves under this scenario.
    pub fn is_drifted(&self, archetype: ArchetypeId) -> bool {
        self.drifted.get(archetype.0).copied().unwrap_or(false)
    }

    /// The profile of one subject at drift time `t`.
    ///
    /// The drift direction is fixed (not sampled): elevated autonomic
    /// baseline (heart rate and tonic conductance up, skin temperature
    /// down), habituated evoked responses (electrodermal reactivity and
    /// overall response gain attenuated) and aging sensors (noise up).
    /// Linear interpolation keeps phases comparable: `t = 0` is the
    /// original profile bit-for-bit.
    pub fn shifted(&self, profile: &SubjectProfile, t: f32) -> SubjectProfile {
        if !self.is_drifted(profile.archetype) {
            return profile.clone();
        }
        let s = t.clamp(0.0, 1.0) * self.severity;
        if s == 0.0 {
            return profile.clone();
        }
        let mut out = profile.clone();
        let p = &mut out.params;
        p.base_hr = (p.base_hr + 9.0 * s).clamp(45.0, 110.0);
        p.base_tonic_gsr = (p.base_tonic_gsr + 1.1 * s).max(0.2);
        p.base_skt = (p.base_skt - 0.9 * s).clamp(28.0, 37.0);
        p.hr_react += 6.0 * s;
        p.scr_rate_react = (p.scr_rate_react * (1.0 - 0.40 * s.min(1.0))).max(0.0);
        p.scr_amp_react = (p.scr_amp_react * (1.0 - 0.45 * s.min(1.0))).max(1.0);
        p.tonic_gsr_react = (p.tonic_gsr_react * (1.0 - 0.35 * s.min(1.0))).max(0.0);
        out.response_gain = (out.response_gain * (1.0 - 0.35 * s.min(1.0))).clamp(0.25, 1.6);
        out.noise_level = (out.noise_level * (1.0 + 1.5 * s)).clamp(0.02, 0.25);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> DriftScenario {
        DriftScenario::new(CohortConfig::small(13), 1.0, &[0, 2])
    }

    #[test]
    fn phase_zero_is_bit_identical_to_plain_generation() {
        let s = scenario();
        let plain = Cohort::generate(&s.config);
        let phase = s.phase(0.0);
        assert_eq!(plain.subjects(), phase.subjects());
        assert_eq!(plain.recordings(), phase.recordings());
    }

    #[test]
    fn stationary_scenario_never_moves() {
        let s = DriftScenario::stationary(CohortConfig::small(13));
        let plain = Cohort::generate(&s.config);
        for t in [0.0, 0.4, 1.0] {
            let phase = s.phase(t);
            assert_eq!(plain.recordings(), phase.recordings());
        }
    }

    #[test]
    fn undrifted_archetypes_stay_bit_identical() {
        let s = scenario();
        let plain = Cohort::generate(&s.config);
        let phase = s.phase(1.0);
        let mut untouched = 0;
        for (a, b) in plain.subjects().iter().zip(phase.subjects()) {
            if !s.is_drifted(a.archetype) {
                assert_eq!(a, b);
                let ra = plain.recordings_of(SubjectId(a.id));
                let rb = phase.recordings_of(SubjectId(b.id));
                assert_eq!(ra, rb);
                untouched += 1;
            }
        }
        assert!(untouched > 0, "control group must be non-empty");
    }

    #[test]
    fn drifted_subjects_actually_move() {
        let s = scenario();
        let plain = Cohort::generate(&s.config);
        let phase = s.phase(1.0);
        let mut moved = 0;
        for (a, b) in plain.subjects().iter().zip(phase.subjects()) {
            if s.is_drifted(a.archetype) {
                assert_ne!(a.params, b.params);
                assert!(b.params.base_hr >= a.params.base_hr);
                assert!(b.response_gain <= a.response_gain);
                assert!(b.noise_level >= a.noise_level);
                moved += 1;
            }
        }
        assert!(moved > 0);
    }

    #[test]
    fn drift_is_monotone_in_t() {
        let s = scenario();
        let sub = Cohort::generate(&s.config)
            .subjects()
            .iter()
            .find(|p| s.is_drifted(p.archetype))
            .cloned()
            .unwrap();
        let mut last_hr = sub.params.base_hr;
        for t in [0.25, 0.5, 0.75, 1.0] {
            let shifted = s.shifted(&sub, t);
            assert!(shifted.params.base_hr >= last_hr);
            last_hr = shifted.params.base_hr;
        }
    }

    #[test]
    fn phases_are_deterministic() {
        let s = scenario();
        let a = s.phase(0.7);
        let b = s.phase(0.7);
        assert_eq!(a.recordings(), b.recordings());
    }

    #[test]
    fn shifted_parameters_respect_physiological_bounds() {
        let s = DriftScenario::new(CohortConfig::small(17), 2.5, &[0, 1, 2, 3]);
        for sub in Cohort::generate(&s.config).subjects() {
            let d = s.shifted(sub, 1.0);
            assert!(d.params.base_hr <= 110.0);
            assert!(d.params.base_skt >= 28.0);
            assert!(d.params.scr_amp_react >= 1.0);
            assert!(d.response_gain >= 0.25);
            assert!(d.noise_level <= 0.25);
        }
    }
}
