//! Per-subject physiological profiles.
//!
//! A subject is an archetype plus idiosyncrasy: every generative parameter
//! is perturbed around the archetype's value, and a per-subject *response
//! gain* scales the whole evoked pattern. The gain and offsets are exactly
//! what the paper's fine-tuning stage recovers from a little labeled data —
//! they are invisible to the cluster-level models.

use crate::archetype::{ArchetypeId, ArchetypeParams};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Controls how far subjects deviate from their archetype.
///
/// `1.0` reproduces the calibrated inter-subject spread; `0.0` makes every
/// subject identical to their archetype (useful in tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdiosyncrasyScale(pub f32);

impl Default for IdiosyncrasyScale {
    fn default() -> Self {
        Self(1.0)
    }
}

/// A concrete subject: archetype parameters with personal deviations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubjectProfile {
    /// Stable subject identifier within the cohort.
    pub id: usize,
    /// Ground-truth archetype (hidden from CLEAR; used only to score
    /// clustering quality).
    pub archetype: ArchetypeId,
    /// The subject's concrete generative parameters.
    pub params: ArchetypeParams,
    /// Multiplier on the whole evoked fear response (subject trait).
    pub response_gain: f32,
    /// Additive sensor noise level (standard deviations in signal units
    /// for BVP; scaled for GSR/SKT).
    pub noise_level: f32,
}

impl SubjectProfile {
    /// Samples a subject around `archetype` using `rng`.
    ///
    /// Deviations are Gaussian with standard deviations chosen so that
    /// intra-archetype spread stays well below the inter-archetype
    /// separation (subjects still cluster correctly) while leaving enough
    /// personal structure for fine-tuning to matter.
    pub fn sample<R: Rng + ?Sized>(
        id: usize,
        archetype: ArchetypeId,
        scale: IdiosyncrasyScale,
        rng: &mut R,
    ) -> Self {
        let base = ArchetypeParams::canonical(archetype);
        let s = scale.0;
        let mut gauss = |std: f32| -> f32 {
            // Box-Muller from two uniforms; good enough and dependency-free.
            let u1: f32 = rng.gen_range(1e-6..1.0f32);
            let u2: f32 = rng.gen_range(0.0..1.0f32);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std * s
        };
        let params = ArchetypeParams {
            base_hr: (base.base_hr + gauss(1.8)).clamp(45.0, 110.0),
            hrv_mod: (base.hrv_mod * (1.0 + gauss(0.15))).clamp(0.005, 0.15),
            base_tonic_gsr: (base.base_tonic_gsr + gauss(0.30)).max(0.2),
            base_scr_rate: (base.base_scr_rate + gauss(0.7)).max(0.2),
            base_skt: (base.base_skt + gauss(0.35)).clamp(28.0, 37.0),
            bvp_amp: (base.bvp_amp * (1.0 + gauss(0.10))).max(0.1),
            hr_react: base.hr_react + gauss(3.0),
            hrv_suppression: (base.hrv_suppression + gauss(0.12)).clamp(-0.6, 0.9),
            scr_rate_react: (base.scr_rate_react + gauss(1.8)).max(0.0),
            scr_amp_react: (base.scr_amp_react + gauss(0.15)).max(1.0),
            tonic_gsr_react: (base.tonic_gsr_react + gauss(0.12)).max(0.0),
            skt_slope_react: base.skt_slope_react + gauss(0.08),
            bvp_amp_react: (base.bvp_amp_react + gauss(0.10)).clamp(0.3, 1.1),
        };
        Self {
            id,
            archetype,
            params,
            response_gain: (1.0 + gauss(0.30)).clamp(0.55, 1.6),
            noise_level: (0.035 + gauss(0.012).abs()).clamp(0.02, 0.12),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_scale_reproduces_archetype_exactly() {
        let mut rng = SmallRng::seed_from_u64(7);
        let s = SubjectProfile::sample(0, ArchetypeId(2), IdiosyncrasyScale(0.0), &mut rng);
        assert_eq!(s.params, ArchetypeParams::canonical(ArchetypeId(2)));
        assert_eq!(s.response_gain, 1.0);
        assert_eq!(s.archetype, ArchetypeId(2));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let s1 = SubjectProfile::sample(3, ArchetypeId(1), IdiosyncrasyScale::default(), &mut a);
        let s2 = SubjectProfile::sample(3, ArchetypeId(1), IdiosyncrasyScale::default(), &mut b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn subjects_stay_near_their_archetype() {
        let mut rng = SmallRng::seed_from_u64(11);
        for arch in 0..4 {
            let base = ArchetypeParams::canonical(ArchetypeId(arch));
            for i in 0..30 {
                let s = SubjectProfile::sample(
                    i,
                    ArchetypeId(arch),
                    IdiosyncrasyScale::default(),
                    &mut rng,
                );
                assert!(
                    (s.params.base_hr - base.base_hr).abs() < 10.0,
                    "hr drifted: {} vs {}",
                    s.params.base_hr,
                    base.base_hr
                );
                assert!((s.params.base_tonic_gsr - base.base_tonic_gsr).abs() < 1.6);
                assert!(s.response_gain >= 0.45 && s.response_gain <= 1.7);
                assert!(s.noise_level >= 0.02 && s.noise_level <= 0.12);
            }
        }
    }

    #[test]
    fn parameters_respect_physiological_bounds() {
        let mut rng = SmallRng::seed_from_u64(99);
        for i in 0..200 {
            let s = SubjectProfile::sample(
                i,
                ArchetypeId(i % 4),
                IdiosyncrasyScale(2.0), // exaggerated spread
                &mut rng,
            );
            let p = &s.params;
            assert!(p.base_hr >= 45.0 && p.base_hr <= 110.0);
            assert!(p.hrv_mod > 0.0);
            assert!(p.base_tonic_gsr > 0.0);
            assert!(p.base_scr_rate > 0.0);
            assert!(p.base_skt >= 28.0 && p.base_skt <= 37.0);
            assert!(p.hr_react.abs() < 25.0);
            assert!(p.hrv_suppression >= -0.6 && p.hrv_suppression <= 0.9);
            assert!(p.scr_amp_react >= 1.0);
            assert!(p.bvp_amp_react >= 0.3 && p.bvp_amp_react <= 1.1);
        }
    }

    #[test]
    fn different_subjects_differ() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = SubjectProfile::sample(0, ArchetypeId(0), IdiosyncrasyScale::default(), &mut rng);
        let b = SubjectProfile::sample(1, ArchetypeId(0), IdiosyncrasyScale::default(), &mut rng);
        assert_ne!(a.params, b.params);
    }
}
