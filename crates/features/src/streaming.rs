//! Streaming feature extraction for on-device use.
//!
//! The batch extractor ([`crate::FeatureExtractor`]) assumes the whole
//! recording is available; a wearable sees samples arrive continuously.
//! [`StreamingExtractor`] buffers incoming multi-rate samples and emits a
//! 123-feature column whenever a full analysis window (with the configured
//! hop) is available — the incremental construction of the same `123 × W`
//! feature map, bit-identical to the batch path.
//!
//! ## Bounded memory
//!
//! Buffers are *draining*: once a window is emitted (or skipped), every
//! sample below the start of the next pending window can never be read by
//! any future window, so it is dropped. Each modality buffer therefore
//! holds at most one window plus one hop of samples (plus the most recent
//! push) regardless of session length. Because window start indices are
//! computed with exactly the same `f32` expressions as the batch extractor
//! and are monotone in the window index, draining cannot disturb any value
//! a future window reads — bit-identity with the batch path is preserved.
//!
//! Overlapping-window work is shared through the buffer itself: samples
//! common to adjacent hops are stored once and sliced zero-copy into each
//! window's extraction (the previous implementation copied every window's
//! samples into fresh allocations).

use crate::extract::{extract_window, WindowConfig};
use crate::map::FeatureMap;
use clear_sim::SignalConfig;

/// A draining sample buffer addressed by *absolute* stream index.
///
/// `data[0]` is absolute sample `base`; samples `< base` were consumed by
/// emitted (or skipped) windows and released.
#[derive(Debug, Clone, Default)]
struct ModalityBuffer {
    data: Vec<f32>,
    base: usize,
}

impl ModalityBuffer {
    fn extend(&mut self, samples: &[f32]) {
        self.data.extend_from_slice(samples);
    }

    /// Total samples ever received (absolute index one past the end).
    fn total_len(&self) -> usize {
        self.base + self.data.len()
    }

    /// Currently resident sample count.
    fn resident(&self) -> usize {
        self.data.len()
    }

    /// Borrows absolute index range `[a, b)`; callers guarantee
    /// `base <= a <= b <= total_len()`.
    fn slice(&self, a: usize, b: usize) -> &[f32] {
        &self.data[a - self.base..b - self.base]
    }

    /// Releases samples below absolute index `keep_from`. Indices beyond
    /// the received horizon are clamped (future samples cannot be dropped;
    /// they are released by a later drain once the cursor has passed them).
    fn drain_to(&mut self, keep_from: usize) {
        if keep_from > self.base {
            let n = (keep_from - self.base).min(self.data.len());
            self.data.drain(..n);
            self.base += n;
        }
    }
}

/// Incremental multi-rate window extractor with draining bounded buffers.
///
/// Push samples as they arrive with [`StreamingExtractor::push`]; each call
/// may complete one or more analysis windows and return their feature
/// columns. Columns collected so far can be assembled into a [`FeatureMap`]
/// at any time (unless retention is disabled via
/// [`StreamingExtractor::retain_columns`] — long-lived sessions hand each
/// column downstream instead of accumulating them).
#[derive(Debug, Clone)]
pub struct StreamingExtractor {
    signal: SignalConfig,
    window: WindowConfig,
    bvp: ModalityBuffer,
    gsr: ModalityBuffer,
    skt: ModalityBuffer,
    /// Index of the next window to emit or skip (the drain cursor).
    cursor: usize,
    /// Windows advanced past without extraction via [`Self::skip_window`].
    skipped: usize,
    retain: bool,
    columns: Vec<Vec<f32>>,
}

impl StreamingExtractor {
    /// Creates a streaming extractor matching a batch
    /// [`FeatureExtractor`](crate::FeatureExtractor) configuration.
    pub fn new(signal: SignalConfig, window: WindowConfig) -> Self {
        Self {
            signal,
            window,
            bvp: ModalityBuffer::default(),
            gsr: ModalityBuffer::default(),
            skt: ModalityBuffer::default(),
            cursor: 0,
            skipped: 0,
            retain: true,
            columns: Vec::new(),
        }
    }

    /// Sets whether completed columns are retained for
    /// [`Self::feature_map`]. Defaults to `true`; long-running sessions
    /// that forward columns elsewhere disable retention so the extractor's
    /// memory stays bounded by the sample buffers alone.
    pub fn retain_columns(mut self, retain: bool) -> Self {
        self.retain = retain;
        self
    }

    /// Buffers newly arrived samples without attempting window emission.
    /// Any of the slices may be empty — modalities arrive at different
    /// rates and may stall independently.
    pub fn extend(&mut self, bvp: &[f32], gsr: &[f32], skt: &[f32]) {
        self.bvp.extend(bvp);
        self.gsr.extend(gsr);
        self.skt.extend(skt);
        // The cursor may have advanced past these samples already (shed
        // policies skip windows whose samples never fully arrived).
        self.drain();
    }

    /// Emits the next window if every modality has enough samples,
    /// advancing the cursor and draining consumed samples. Returns `None`
    /// while the window is still incomplete.
    pub fn try_emit_one(&mut self) -> Option<Vec<f32>> {
        let t0 = self.cursor as f32 * self.window.step_secs;
        let t1 = t0 + self.window.window_secs;
        let need_bvp = (t1 * self.signal.fs_bvp).ceil() as usize;
        let need_gsr = (t1 * self.signal.fs_gsr).ceil() as usize;
        let need_skt = (t1 * self.signal.fs_skt).ceil() as usize;
        if self.bvp.total_len() < need_bvp
            || self.gsr.total_len() < need_gsr
            || self.skt.total_len() < need_skt
        {
            return None;
        }
        let bounds = |fs: f32, total: usize| -> (usize, usize) {
            let a = (t0 * fs) as usize;
            let b = ((t1 * fs) as usize).min(total);
            (a.min(b), b)
        };
        let (ab, bb) = bounds(self.signal.fs_bvp, self.bvp.total_len());
        let (ag, bg) = bounds(self.signal.fs_gsr, self.gsr.total_len());
        let (as_, bs) = bounds(self.signal.fs_skt, self.skt.total_len());
        let col = extract_window(
            self.bvp.slice(ab, bb),
            self.gsr.slice(ag, bg),
            self.skt.slice(as_, bs),
            &self.signal,
        );
        if self.retain {
            self.columns.push(col.clone());
        }
        self.cursor += 1;
        self.drain();
        Some(col)
    }

    /// Advances the cursor past the next window *without* computing it,
    /// draining the samples only that window could still read. Shed
    /// policies use this to reclaim memory when a window can no longer be
    /// afforded (or its samples will never fully arrive).
    pub fn skip_window(&mut self) {
        self.cursor += 1;
        self.skipped += 1;
        self.drain();
    }

    /// Appends newly arrived samples of each modality (any of the slices
    /// may be empty) and emits every window they complete. Returns the
    /// feature columns completed by this push (usually zero or one).
    pub fn push(&mut self, bvp: &[f32], gsr: &[f32], skt: &[f32]) -> Vec<Vec<f32>> {
        self.extend(bvp, gsr, skt);
        let mut out = Vec::new();
        while let Some(col) = self.try_emit_one() {
            out.push(col);
        }
        out
    }

    /// Releases every sample below the start of the cursor's window — no
    /// future window (window starts are monotone in the index) can read
    /// them. The start index replicates the batch extractor's expression
    /// `(t0 * fs) as usize` exactly, so draining never changes emitted
    /// values.
    fn drain(&mut self) {
        let t0 = self.cursor as f32 * self.window.step_secs;
        self.bvp.drain_to((t0 * self.signal.fs_bvp) as usize);
        self.gsr.drain_to((t0 * self.signal.fs_gsr) as usize);
        self.skt.drain_to((t0 * self.signal.fs_skt) as usize);
    }

    /// Number of completed (extracted) windows so far.
    pub fn window_count(&self) -> usize {
        self.cursor - self.skipped
    }

    /// Index of the next window the cursor will emit or skip.
    pub fn next_window_index(&self) -> usize {
        self.cursor
    }

    /// Windows skipped by [`Self::skip_window`].
    pub fn skipped_windows(&self) -> usize {
        self.skipped
    }

    /// Samples currently resident across all modality buffers. Bounded by
    /// one window plus one hop per modality (plus the latest push) no
    /// matter how long the session runs.
    pub fn buffered_samples(&self) -> usize {
        self.bvp.resident() + self.gsr.resident() + self.skt.resident()
    }

    /// Assembles the feature map of all completed windows.
    ///
    /// Returns `None` before the first window completes or when column
    /// retention is disabled.
    pub fn feature_map(&self) -> Option<FeatureMap> {
        if self.columns.is_empty() {
            None
        } else {
            Some(FeatureMap::from_columns(&self.columns))
        }
    }

    /// Releases excess buffer capacity (the bounded-memory maintenance a
    /// device would run between sessions). Emitted feature columns and
    /// pending samples are preserved, so results are unaffected.
    pub fn trim(&mut self) {
        self.bvp.data.shrink_to_fit();
        self.gsr.data.shrink_to_fit();
        self.skt.data.shrink_to_fit();
        self.columns.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::FeatureExtractor;
    use clear_sim::{Cohort, CohortConfig};

    #[test]
    fn streaming_matches_batch_extraction_exactly() {
        let config = CohortConfig::small(13);
        let cohort = Cohort::generate(&config);
        let rec = &cohort.recordings()[0];
        let wcfg = WindowConfig::default();
        let batch = FeatureExtractor::new(config.signal, wcfg).feature_map(rec);

        let mut streaming = StreamingExtractor::new(config.signal, wcfg);
        // Feed in uneven chunks to exercise the multi-rate buffering.
        let mut fed_b = 0;
        let mut fed_g = 0;
        let mut fed_s = 0;
        let chunks = [37usize, 111, 53, 400, 9999];
        for &c in &chunks {
            let nb = (fed_b + c * 8).min(rec.bvp.len());
            let ng = (fed_g + c).min(rec.gsr.len());
            let ns = (fed_s + c / 2).min(rec.skt.len());
            streaming.push(
                &rec.bvp[fed_b..nb],
                &rec.gsr[fed_g..ng],
                &rec.skt[fed_s..ns],
            );
            fed_b = nb;
            fed_g = ng;
            fed_s = ns;
        }
        // Flush any remainder.
        streaming.push(&rec.bvp[fed_b..], &rec.gsr[fed_g..], &rec.skt[fed_s..]);

        let live = streaming.feature_map().expect("windows completed");
        assert_eq!(live.window_count(), batch.window_count());
        for f in 0..live.feature_count() {
            for w in 0..live.window_count() {
                assert_eq!(
                    live.get(f, w),
                    batch.get(f, w),
                    "feature {f} window {w} diverged"
                );
            }
        }
    }

    #[test]
    fn no_windows_before_enough_samples() {
        let config = CohortConfig::small(1);
        let mut s = StreamingExtractor::new(config.signal, WindowConfig::default());
        assert!(s.feature_map().is_none());
        let emitted = s.push(&[0.0; 10], &[1.0; 2], &[33.0; 1]);
        assert!(emitted.is_empty());
        assert_eq!(s.window_count(), 0);
    }

    #[test]
    fn one_push_can_complete_multiple_windows() {
        let config = CohortConfig::small(5);
        let cohort = Cohort::generate(&config);
        let rec = &cohort.recordings()[0];
        let mut s = StreamingExtractor::new(config.signal, WindowConfig::default());
        let emitted = s.push(&rec.bvp, &rec.gsr, &rec.skt);
        // 30 s stimulus, 12 s window / 6 s hop → 4 windows at once.
        assert_eq!(emitted.len(), 4);
        assert_eq!(s.window_count(), 4);
        s.trim(); // must not disturb results
        assert_eq!(s.feature_map().unwrap().window_count(), 4);
    }

    /// Regression for the unbounded-growth bug: the old extractor kept
    /// every sample ever pushed, so a long session grew without limit.
    /// Buffers must now stay pinned below one window + one hop + one chunk
    /// per modality for the whole session.
    #[test]
    fn long_session_buffers_stay_bounded() {
        let config = CohortConfig::small(21);
        let cohort = Cohort::generate(&config);
        let rec = &cohort.recordings()[0];
        let wcfg = WindowConfig::default();
        let signal = config.signal;
        let mut s = StreamingExtractor::new(signal, wcfg).retain_columns(false);

        // One second of stream per push, cycling the recording ~40 times:
        // a session ~20 minutes long at the small-config 30 s stimulus.
        let chunk_b = signal.fs_bvp as usize;
        let chunk_g = signal.fs_gsr as usize;
        let chunk_s = signal.fs_skt as usize;
        let window_and_hop = ((wcfg.window_secs + wcfg.step_secs)
            * (signal.fs_bvp + signal.fs_gsr + signal.fs_skt))
            .ceil() as usize;
        let bound = window_and_hop + chunk_b + chunk_g + chunk_s + 3;

        let mut total_windows = 0usize;
        for cycle in 0..40 {
            let mut off_b = 0;
            let mut off_g = 0;
            let mut off_s = 0;
            while off_b < rec.bvp.len() {
                let nb = (off_b + chunk_b).min(rec.bvp.len());
                let ng = (off_g + chunk_g).min(rec.gsr.len());
                let ns = (off_s + chunk_s).min(rec.skt.len());
                let cols = s.push(
                    &rec.bvp[off_b..nb],
                    &rec.gsr[off_g..ng],
                    &rec.skt[off_s..ns],
                );
                total_windows += cols.len();
                assert!(
                    s.buffered_samples() <= bound,
                    "cycle {cycle}: resident {} exceeds bound {bound}",
                    s.buffered_samples()
                );
                off_b = nb;
                off_g = ng;
                off_s = ns;
            }
        }
        // ~1200 s of signal at 12 s / 6 s windows → windows keep flowing.
        assert!(total_windows > 150, "only {total_windows} windows emitted");
        assert_eq!(s.window_count(), total_windows);
        // Retention disabled → no column accumulation either.
        assert!(s.feature_map().is_none());
    }

    /// Draining must never change emitted values: compare a bounded run
    /// against the batch extractor (which sees the whole signal at once).
    #[test]
    fn drained_buffers_stay_bit_identical_to_batch() {
        let config = CohortConfig::small(34);
        let cohort = Cohort::generate(&config);
        let rec = &cohort.recordings()[1];
        let wcfg = WindowConfig::default();
        let batch = FeatureExtractor::new(config.signal, wcfg).feature_map(rec);

        let mut s = StreamingExtractor::new(config.signal, wcfg);
        // Quarter-second pushes — many drains over the recording.
        let cb = (config.signal.fs_bvp / 4.0).max(1.0) as usize;
        let cg = (config.signal.fs_gsr / 4.0).max(1.0) as usize;
        let cs = (config.signal.fs_skt / 4.0).max(1.0) as usize;
        let mut ob = 0;
        let mut og = 0;
        let mut os = 0;
        while ob < rec.bvp.len() || og < rec.gsr.len() || os < rec.skt.len() {
            let nb = (ob + cb).min(rec.bvp.len());
            let ng = (og + cg).min(rec.gsr.len());
            let ns = (os + cs).min(rec.skt.len());
            s.push(&rec.bvp[ob..nb], &rec.gsr[og..ng], &rec.skt[os..ns]);
            ob = nb;
            og = ng;
            os = ns;
        }
        let live = s.feature_map().expect("windows completed");
        assert_eq!(live.window_count(), batch.window_count());
        for f in 0..live.feature_count() {
            for w in 0..live.window_count() {
                assert_eq!(live.get(f, w).to_bits(), batch.get(f, w).to_bits());
            }
        }
    }

    #[test]
    fn skip_window_advances_cursor_and_reclaims_memory() {
        let config = CohortConfig::small(8);
        let cohort = Cohort::generate(&config);
        let rec = &cohort.recordings()[0];
        let wcfg = WindowConfig::default();

        // Feed BVP/GSR fully but stall SKT: no window can complete, yet
        // samples keep piling up — the shed-policy scenario.
        let mut s = StreamingExtractor::new(config.signal, wcfg);
        s.push(&rec.bvp, &rec.gsr, &[]);
        assert_eq!(s.window_count(), 0);
        let before = s.buffered_samples();
        s.skip_window();
        assert!(s.buffered_samples() < before, "skip must drain samples");
        assert_eq!(s.skipped_windows(), 1);
        assert_eq!(s.window_count(), 0);
        assert_eq!(s.next_window_index(), 1);

        // Once SKT arrives, later windows still match the batch values.
        let emitted = s.push(&[], &[], &rec.skt);
        assert!(!emitted.is_empty());
        let batch = FeatureExtractor::new(config.signal, wcfg).feature_map(rec);
        // First streamed column after the skip is batch window 1.
        for (f, v) in emitted[0].iter().enumerate() {
            assert_eq!(v.to_bits(), batch.get(f, 1).to_bits(), "feature {f}");
        }
    }
}
