//! Consistent-hash placement: which member leads which partition.
//!
//! Users hash to one of a fixed number of *partitions* (stable across
//! membership changes — a user's partition never moves), and partitions
//! hash onto a ring of member virtual nodes. Adding or removing one
//! member therefore moves only the partitions whose ring owner changes —
//! ~1/N of them — and every moved partition's *new* owner is the added
//! member (the minimal-movement invariant, proven by the proptests in
//! `tests/properties.rs`).
//!
//! Hashing is FNV-1a 64: deterministic across processes and platforms
//! (no `RandomState`), so placement is reproducible — the same property
//! the serving engine relies on for its shard key, made portable.

use crate::MemberId;

/// FNV-1a 64-bit hash of a key. Deterministic and platform-independent,
/// so cluster placement never depends on process-local hasher state.
pub fn hash_key(key: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A consistent-hash ring of member virtual nodes. Each member
/// contributes `vnodes` points; a key is owned by the member whose point
/// is the first at or clockwise after the key's hash.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, member)` sorted by point. Ties are impossible in
    /// practice; if two members ever hashed to the same point the lower
    /// member id would win deterministically.
    points: Vec<(u64, MemberId)>,
    vnodes: usize,
}

impl HashRing {
    /// An empty ring where every member will contribute `vnodes` virtual
    /// nodes (floor 1).
    pub fn new(vnodes: usize) -> Self {
        Self {
            points: Vec::new(),
            vnodes: vnodes.max(1),
        }
    }

    fn vnode_point(member: MemberId, vnode: usize) -> u64 {
        hash_key(&format!("member-{member}#vnode-{vnode}"))
    }

    /// Adds a member's virtual nodes (idempotent).
    pub fn add(&mut self, member: MemberId) {
        if self.points.iter().any(|&(_, m)| m == member) {
            return;
        }
        for v in 0..self.vnodes {
            self.points.push((Self::vnode_point(member, v), member));
        }
        self.points.sort_unstable();
    }

    /// Removes a member's virtual nodes (idempotent).
    pub fn remove(&mut self, member: MemberId) {
        self.points.retain(|&(_, m)| m != member);
    }

    /// Members currently on the ring, sorted.
    pub fn members(&self) -> Vec<MemberId> {
        let mut out: Vec<MemberId> = self.points.iter().map(|&(_, m)| m).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The member owning `key`: the first virtual node at or clockwise
    /// after the key's hash, wrapping around. `None` on an empty ring.
    pub fn owner_of(&self, key: &str) -> Option<MemberId> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_key(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let idx = if idx == self.points.len() { 0 } else { idx };
        Some(self.points[idx].1)
    }

    /// The first member *distinct from* `skip` walking clockwise from
    /// the key's owner — the natural replica placement. `None` when the
    /// ring holds no other member.
    pub fn successor_of(&self, key: &str, skip: MemberId) -> Option<MemberId> {
        self.successors_of(key, skip, 1).into_iter().next()
    }

    /// The first `n` *distinct* members other than `skip`, walking
    /// clockwise from the key's hash — R-replica placement. Members
    /// appear at most once however many virtual nodes they contribute,
    /// so no two replicas of one key ever co-locate; fewer than `n`
    /// members are returned when the ring has fewer than `n` candidates.
    pub fn successors_of(&self, key: &str, skip: MemberId, n: usize) -> Vec<MemberId> {
        let mut out = Vec::with_capacity(n);
        if self.points.is_empty() || n == 0 {
            return out;
        }
        let h = hash_key(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        for step in 0..self.points.len() {
            let (_, m) = self.points[(start + step) % self.points.len()];
            if m != skip && !out.contains(&m) {
                out.push(m);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

/// Maps users to partitions (stable) and partitions to members (via the
/// ring). The serving cluster replicates and migrates whole partitions,
/// never individual users.
#[derive(Debug, Clone)]
pub struct Partitioner {
    partitions: usize,
    ring: HashRing,
}

/// The ring key of a partition.
fn partition_key(partition: usize) -> String {
    format!("partition-{partition}")
}

impl Partitioner {
    /// A partitioner over `partitions` fixed partitions (floor 1) and a
    /// ring with `vnodes` virtual nodes per member.
    pub fn new(partitions: usize, vnodes: usize) -> Self {
        Self {
            partitions: partitions.max(1),
            ring: HashRing::new(vnodes),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The partition a user's state lives in. Depends only on the user
    /// id and the partition count — never on membership — so it is the
    /// same on every member and across every membership change.
    pub fn partition_of(&self, user: &str) -> usize {
        (hash_key(user) % self.partitions as u64) as usize
    }

    /// The member that should lead `partition` under current membership.
    pub fn leader_of(&self, partition: usize) -> Option<MemberId> {
        self.ring.owner_of(&partition_key(partition))
    }

    /// The member that should follow `partition`: the next distinct
    /// member clockwise from the leader. `None` with fewer than two
    /// members.
    pub fn follower_of(&self, partition: usize) -> Option<MemberId> {
        self.followers_of(partition, 1).into_iter().next()
    }

    /// The `replicas` members that should follow `partition`: the next
    /// distinct members clockwise from the leader, in ring order. All
    /// returned members are distinct from each other and from the
    /// leader; fewer are returned when membership is too small.
    pub fn followers_of(&self, partition: usize, replicas: usize) -> Vec<MemberId> {
        let Some(leader) = self.leader_of(partition) else {
            return Vec::new();
        };
        self.ring
            .successors_of(&partition_key(partition), leader, replicas)
    }

    /// Adds a member to the ring (idempotent).
    pub fn add_member(&mut self, member: MemberId) {
        self.ring.add(member);
    }

    /// Removes a member from the ring (idempotent).
    pub fn remove_member(&mut self, member: MemberId) {
        self.ring.remove(member);
    }

    /// Members currently on the ring, sorted.
    pub fn members(&self) -> Vec<MemberId> {
        self.ring.members()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_key_is_stable_and_spreads() {
        // FNV-1a reference value for the empty string.
        assert_eq!(hash_key(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(hash_key("user-1"), hash_key("user-2"));
        assert_eq!(hash_key("user-1"), hash_key("user-1"));
    }

    #[test]
    fn owner_lookup_wraps_and_is_deterministic() {
        let mut ring = HashRing::new(16);
        ring.add(0);
        ring.add(1);
        ring.add(2);
        assert_eq!(ring.members(), vec![0, 1, 2]);
        for key in ["a", "b", "partition-0", "partition-7"] {
            let owner = ring.owner_of(key).unwrap();
            assert_eq!(ring.owner_of(key).unwrap(), owner);
            assert!(owner <= 2);
            let succ = ring.successor_of(key, owner).unwrap();
            assert_ne!(succ, owner);
        }
        assert_eq!(HashRing::new(8).owner_of("a"), None);
    }

    #[test]
    fn successor_is_none_on_a_single_member_ring() {
        let mut ring = HashRing::new(16);
        ring.add(5);
        assert_eq!(ring.owner_of("k"), Some(5));
        assert_eq!(ring.successor_of("k", 5), None);
    }

    #[test]
    fn add_and_remove_are_idempotent() {
        let mut ring = HashRing::new(4);
        ring.add(1);
        ring.add(1);
        assert_eq!(ring.members(), vec![1]);
        ring.remove(1);
        ring.remove(1);
        assert!(ring.is_empty());
    }

    #[test]
    fn partitions_are_stable_across_membership() {
        let mut part = Partitioner::new(8, 16);
        part.add_member(0);
        let before: Vec<usize> = (0..100)
            .map(|i| part.partition_of(&format!("user-{i}")))
            .collect();
        part.add_member(1);
        part.add_member(2);
        part.remove_member(0);
        let after: Vec<usize> = (0..100)
            .map(|i| part.partition_of(&format!("user-{i}")))
            .collect();
        assert_eq!(before, after, "a user's partition never moves");
    }

    #[test]
    fn leader_and_follower_are_distinct_members() {
        let mut part = Partitioner::new(8, 32);
        part.add_member(0);
        part.add_member(1);
        part.add_member(2);
        for p in 0..8 {
            let leader = part.leader_of(p).unwrap();
            let follower = part.follower_of(p).unwrap();
            assert_ne!(leader, follower, "partition {p}");
        }
    }

    #[test]
    fn r_replica_placement_never_co_locates() {
        let mut part = Partitioner::new(8, 32);
        for m in 0..4 {
            part.add_member(m);
        }
        for p in 0..8 {
            let leader = part.leader_of(p).unwrap();
            let followers = part.followers_of(p, 2);
            assert_eq!(followers.len(), 2, "partition {p}");
            assert!(!followers.contains(&leader), "partition {p} self-replicates");
            assert_ne!(followers[0], followers[1], "partition {p} co-locates replicas");
            assert_eq!(
                followers[0],
                part.follower_of(p).unwrap(),
                "the single-follower view is the first ring successor"
            );
        }
    }

    #[test]
    fn successors_clamp_to_available_members() {
        let mut part = Partitioner::new(4, 16);
        part.add_member(7);
        assert!(part.followers_of(0, 2).is_empty(), "no candidates besides the leader");
        part.add_member(8);
        assert_eq!(part.followers_of(0, 3).len(), 1, "one candidate, however many asked");
        assert!(part.followers_of(0, 0).is_empty());
    }
}
