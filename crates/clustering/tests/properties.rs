//! Property-based tests of the clustering substrate's invariants.

use clear_clustering::hierarchy::{ClusterHierarchy, HierarchyConfig};
use clear_clustering::kmeans::{KMeans, KMeansConfig};
use clear_clustering::quality::{adjusted_rand_index, purity, silhouette, wcss};
use clear_clustering::{centroid_of, distance_sq};
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 3), 4..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After convergence every point sits in its nearest cluster and each
    /// non-empty centroid is the mean of its members.
    #[test]
    fn kmeans_fixed_point_invariants(points in points_strategy(), k in 1usize..4) {
        prop_assume!(k <= points.len());
        let model = KMeans::new(KMeansConfig { k, max_iter: 200, n_init: 2, seed: 7 })
            .fit(&points);
        for (p, &a) in points.iter().zip(model.assignments()) {
            let da = distance_sq(p, &model.centroids()[a]);
            for c in model.centroids() {
                prop_assert!(da <= distance_sq(p, c) + 1e-3);
            }
        }
        for c in 0..k {
            let members: Vec<&[f32]> = model
                .members(c)
                .into_iter()
                .map(|i| points[i].as_slice())
                .collect();
            if members.is_empty() {
                continue;
            }
            let mean = centroid_of(&members);
            for (a, b) in mean.iter().zip(&model.centroids()[c]) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
        // Reported inertia is consistent with the WCSS definition.
        let w = wcss(&points, model.assignments(), model.centroids());
        prop_assert!((w - model.inertia()).abs() < 1e-2 * (1.0 + w));
    }

    /// ARI is symmetric, 1 on identical labelings, and label-permutation
    /// invariant.
    #[test]
    fn ari_properties(labels in prop::collection::vec(0usize..4, 4..48)) {
        prop_assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-5);
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 4).collect();
        prop_assert!((adjusted_rand_index(&labels, &permuted) - 1.0).abs() < 1e-5);
        let other: Vec<usize> = labels.iter().rev().copied().collect();
        let ab = adjusted_rand_index(&labels, &other);
        let ba = adjusted_rand_index(&other, &labels);
        prop_assert!((ab - ba).abs() < 1e-5);
    }

    /// Purity lies in (0, 1] and equals 1 when predictions refine truth.
    #[test]
    fn purity_properties(truth in prop::collection::vec(0usize..3, 4..48)) {
        let perfect: Vec<usize> = truth.clone();
        prop_assert_eq!(purity(&perfect, &truth), 1.0);
        // Each point its own cluster → also purity 1 (a refinement).
        let singleton: Vec<usize> = (0..truth.len()).collect();
        prop_assert_eq!(purity(&singleton, &truth), 1.0);
        // All-one-cluster purity equals the majority class share.
        let lumped = vec![0usize; truth.len()];
        let mut counts = [0usize; 3];
        for &t in &truth {
            counts[t] += 1;
        }
        let majority = *counts.iter().max().unwrap() as f32 / truth.len() as f32;
        prop_assert!((purity(&lumped, &truth) - majority).abs() < 1e-5);
    }

    /// Silhouette is bounded in [-1, 1].
    #[test]
    fn silhouette_bounds(points in points_strategy()) {
        let labels: Vec<usize> = (0..points.len()).map(|i| i % 2).collect();
        let s = silhouette(&points, &labels);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    /// The hierarchy's assignment agrees with its own scores and is a
    /// valid cluster index.
    #[test]
    fn hierarchy_consistency(points in points_strategy(), qx in -20.0f32..20.0, qy in -20.0f32..20.0) {
        prop_assume!(points.len() >= 4);
        let model = KMeans::new(KMeansConfig { k: 2, ..Default::default() }).fit(&points);
        let h = ClusterHierarchy::build(&model, &points, &HierarchyConfig::default());
        let q = vec![qx, qy, 0.0];
        let scores = h.scores(&q);
        let assigned = h.assign(&q);
        prop_assert!(assigned < 2);
        for s in &scores {
            prop_assert!(scores[assigned] <= s + 1e-5);
        }
    }
}
