//! Execution state for [`Network`](crate::network::Network) passes.
//!
//! The network itself holds nothing but weights: every mutable per-call
//! quantity — layer activations, parameter gradients, the LSTM step tape,
//! pooling argmax indices, dropout masks — lives in a [`Workspace`] owned
//! by the caller. This splits "model" from "execution" the way inference
//! runtimes do (one immutable weight set, one scratch context per thread),
//! so a single checkpoint can serve many users or LOSO folds concurrently,
//! and steady-state inference reuses buffers instead of allocating
//! per call.
//!
//! A workspace binds lazily to the first network it runs and rebinds
//! automatically when handed a network with a different layer structure.
//! Buffers are resized in place, so repeated calls with same-shaped inputs
//! perform no allocations.

use crate::backend::KernelScratch;
use crate::layers::Layer;
use crate::tensor::Tensor;

/// Reusable mutable state for forward/backward passes over a network.
///
/// Create once with [`Workspace::new`] and pass to every
/// [`Network::forward`](crate::network::Network::forward) /
/// [`Network::backward`](crate::network::Network::backward) call. Reusing
/// one workspace across calls is what makes steady-state inference
/// allocation-free; results are bit-identical to using a fresh workspace
/// per call.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// `acts[0]` is a copy of the network input; `acts[i + 1]` is the
    /// output of layer `i`.
    pub(crate) acts: Vec<Tensor>,
    /// `grads[i]` is the loss gradient with respect to the *input* of
    /// layer `i` (so `grads[0]` is the input gradient).
    pub(crate) grads: Vec<Tensor>,
    /// Per-layer mutable state, aligned with the bound network's layers.
    pub(crate) states: Vec<LayerState>,
    /// Per-layer kernel scratch (prepared weight forms, packing buffers),
    /// aligned with the bound network's layers and invalidated by its
    /// weight stamp.
    pub(crate) kernels: Vec<KernelScratch>,
}

impl Workspace {
    /// Creates an empty workspace; it sizes itself on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Output activation of the most recent forward pass.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has run in this workspace.
    pub fn output(&self) -> &Tensor {
        self.acts
            .last()
            .expect("workspace holds no output: no forward pass has run")
    }

    /// Loss gradient with respect to the network input, from the most
    /// recent backward pass.
    ///
    /// # Panics
    ///
    /// Panics if no backward pass has run in this workspace.
    pub fn input_grad(&self) -> &Tensor {
        self.grads
            .first()
            .expect("workspace holds no gradients: no backward pass has run")
    }

    /// Zeroes all accumulated parameter gradients.
    pub fn zero_grads(&mut self) {
        for state in &mut self.states {
            state.zero_grads();
        }
    }

    /// Visits every parameter-gradient slice in network traversal order
    /// (the same order as
    /// [`Network::visit_params`](crate::network::Network::visit_params)).
    pub fn visit_grads(&self, f: &mut dyn FnMut(&[f32])) {
        for state in &self.states {
            state.visit_grads(f);
        }
    }

    /// Flattens all accumulated parameter gradients into one vector.
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_grads(&mut |g| out.extend_from_slice(g));
        out
    }

    /// Binds this workspace to `layers`, rebuilding per-layer state when
    /// the structure does not match. Matching state (and the dropout
    /// counter stream with it) is kept across calls.
    pub(crate) fn bind(&mut self, layers: &[Layer]) {
        let bound = self.states.len() == layers.len()
            && self
                .states
                .iter()
                .zip(layers)
                .all(|(state, layer)| state.matches(layer));
        if !bound {
            clear_obs::counter_add(clear_obs::counters::WORKSPACE_REBINDS, 1);
            self.states = layers.iter().map(LayerState::for_layer).collect();
            self.grads.clear();
            // Fresh scratch: prepared weight forms from the old network
            // must not survive a rebind (stamps would still differ, but a
            // clean slate also drops dead buffers).
            self.kernels = layers.iter().map(|_| KernelScratch::default()).collect();
        }
        if self.kernels.len() != layers.len() {
            self.kernels
                .resize_with(layers.len(), KernelScratch::default);
        }
        if self.acts.len() != layers.len() + 1 {
            self.acts
                .resize_with(layers.len() + 1, || Tensor::zeros(&[1]));
        }
    }
}

/// Mutable per-layer execution state: parameter gradients plus whatever
/// the layer's backward pass needs from its forward pass.
#[derive(Debug, Clone)]
pub(crate) enum LayerState {
    Conv2d {
        gw: Vec<f32>,
        gb: Vec<f32>,
    },
    Relu,
    MaxPool2d {
        argmax: Vec<usize>,
    },
    MapToSequence,
    Lstm {
        gwx: Vec<f32>,
        gwh: Vec<f32>,
        gb: Vec<f32>,
        tape: LstmTape,
    },
    Dense {
        gw: Vec<f32>,
        gb: Vec<f32>,
    },
    Dropout {
        mask: Vec<f32>,
        /// Live dropout-draw counter; seeded from the layer's serialized
        /// counter at bind time and synced back by the trainer.
        counter: u64,
    },
}

impl LayerState {
    /// Fresh state sized for `layer`.
    pub(crate) fn for_layer(layer: &Layer) -> Self {
        match layer {
            Layer::Conv2d(l) => LayerState::Conv2d {
                gw: vec![0.0; l.w.len()],
                gb: vec![0.0; l.b.len()],
            },
            Layer::Relu(_) => LayerState::Relu,
            Layer::MaxPool2d(_) => LayerState::MaxPool2d { argmax: Vec::new() },
            Layer::MapToSequence(_) => LayerState::MapToSequence,
            Layer::Lstm(l) => LayerState::Lstm {
                gwx: vec![0.0; l.wx.len()],
                gwh: vec![0.0; l.wh.len()],
                gb: vec![0.0; l.b.len()],
                tape: LstmTape::default(),
            },
            Layer::Dense(l) => LayerState::Dense {
                gw: vec![0.0; l.w.len()],
                gb: vec![0.0; l.b.len()],
            },
            Layer::Dropout(l) => LayerState::Dropout {
                mask: Vec::new(),
                counter: l.counter,
            },
        }
    }

    /// Whether this state fits `layer` (kind and parameter sizes).
    fn matches(&self, layer: &Layer) -> bool {
        match (self, layer) {
            (LayerState::Conv2d { gw, gb }, Layer::Conv2d(l)) => {
                gw.len() == l.w.len() && gb.len() == l.b.len()
            }
            (LayerState::Relu, Layer::Relu(_)) => true,
            (LayerState::MaxPool2d { .. }, Layer::MaxPool2d(_)) => true,
            (LayerState::MapToSequence, Layer::MapToSequence(_)) => true,
            (LayerState::Lstm { gwx, gwh, gb, .. }, Layer::Lstm(l)) => {
                gwx.len() == l.wx.len() && gwh.len() == l.wh.len() && gb.len() == l.b.len()
            }
            (LayerState::Dense { gw, gb }, Layer::Dense(l)) => {
                gw.len() == l.w.len() && gb.len() == l.b.len()
            }
            (LayerState::Dropout { .. }, Layer::Dropout(_)) => true,
            _ => false,
        }
    }

    /// Zeroes this layer's accumulated parameter gradients.
    pub(crate) fn zero_grads(&mut self) {
        match self {
            LayerState::Conv2d { gw, gb } | LayerState::Dense { gw, gb } => {
                gw.iter_mut().for_each(|v| *v = 0.0);
                gb.iter_mut().for_each(|v| *v = 0.0);
            }
            LayerState::Lstm { gwx, gwh, gb, .. } => {
                gwx.iter_mut().for_each(|v| *v = 0.0);
                gwh.iter_mut().for_each(|v| *v = 0.0);
                gb.iter_mut().for_each(|v| *v = 0.0);
            }
            LayerState::Relu
            | LayerState::MaxPool2d { .. }
            | LayerState::MapToSequence
            | LayerState::Dropout { .. } => {}
        }
    }

    /// Visits parameter-gradient slices in the layer's parameter order.
    pub(crate) fn visit_grads(&self, f: &mut dyn FnMut(&[f32])) {
        match self {
            LayerState::Conv2d { gw, gb } | LayerState::Dense { gw, gb } => {
                f(gw);
                f(gb);
            }
            LayerState::Lstm { gwx, gwh, gb, .. } => {
                f(gwx);
                f(gwh);
                f(gb);
            }
            LayerState::Relu
            | LayerState::MaxPool2d { .. }
            | LayerState::MapToSequence
            | LayerState::Dropout { .. } => {}
        }
    }
}

/// Flat, reusable step tape for the LSTM: forward activations plus
/// backward scratch, all resized in place per call.
///
/// Public because [`InferenceBackend::lstm`](crate::backend::InferenceBackend::lstm)
/// steps it; its fields stay crate-private.
#[derive(Debug, Clone, Default)]
pub struct LstmTape {
    /// Activated gates per step, `T × 4H`, blocks `i | f | g | o`.
    pub(crate) gates: Vec<f32>,
    /// Cell states per step, `T × H`.
    pub(crate) cs: Vec<f32>,
    /// Hidden states per step, `T × H`.
    pub(crate) hs: Vec<f32>,
    /// `H` zeros standing in for the `t = 0` previous state.
    pub(crate) zero: Vec<f32>,
    /// Backward scratch: gradient w.r.t. the current hidden state.
    pub(crate) dh: Vec<f32>,
    /// Backward scratch: gradient w.r.t. the previous hidden state.
    pub(crate) dh_prev: Vec<f32>,
    /// Backward scratch: gradient w.r.t. the cell state.
    pub(crate) dc: Vec<f32>,
    /// Backward scratch: gradient w.r.t. the pre-activation gates, `4H`.
    pub(crate) dz: Vec<f32>,
}

impl LstmTape {
    /// Sizes the forward tape for a `[T, D] → H` pass and zeroes the
    /// `t = 0` stand-in state. Every backend's LSTM kernel starts here.
    pub(crate) fn begin(&mut self, t_len: usize, hdim: usize) {
        self.gates.resize(t_len * 4 * hdim, 0.0);
        self.cs.resize(t_len * hdim, 0.0);
        self.hs.resize(t_len * hdim, 0.0);
        self.zero.resize(hdim, 0.0);
        self.zero.iter_mut().for_each(|v| *v = 0.0);
    }
}
