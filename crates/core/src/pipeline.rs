//! The CLEAR pipeline: cloud training, cold-start assignment, fine-tuning.

use crate::config::ClearConfig;
use crate::dataset::PreparedCohort;
use clear_clustering::hierarchy::ClusterHierarchy;
use clear_clustering::kmeans::KMeansModel;
use clear_clustering::refine::refined_fit;
use clear_features::Normalizer;
use clear_nn::data::Dataset;
use clear_nn::metrics::FoldScore;
use clear_nn::network::{cnn_lstm, cnn_lstm_compact, Network};
use clear_nn::train::{self, TrainConfig};
use clear_sim::SubjectId;
use std::collections::BTreeMap;

/// The result of the cloud stage (paper §III-A): global clustering over
/// the initial user population plus one pre-trained CNN-LSTM per cluster.
#[derive(Debug, Clone)]
pub struct CloudTraining {
    normalizer: Normalizer,
    clf_normalizer: Normalizer,
    clustering: KMeansModel,
    hierarchy: ClusterHierarchy,
    subject_cluster: BTreeMap<SubjectId, usize>,
    models: Vec<Network>,
    windows: usize,
}

impl CloudTraining {
    /// Runs the full cloud stage on `subjects` (the initial, labeled
    /// population): fits normalization statistics, performs refined
    /// Global Clustering of per-user feature vectors, builds the internal
    /// sub-centroid hierarchy and pre-trains one model per cluster,
    /// keeping the best-validation checkpoint of each.
    ///
    /// # Panics
    ///
    /// Panics if `subjects` is empty or smaller than `config.k`.
    pub fn fit(data: &PreparedCohort, subjects: &[SubjectId], config: &ClearConfig) -> Self {
        let _span = clear_obs::span(clear_obs::Stage::CloudFit);
        assert!(
            subjects.len() >= config.k,
            "need at least k subjects to form k clusters"
        );
        let normalizer = data.fit_normalizer(subjects);

        // Global Clustering on the D ∈ R^{F×N} matrix of user vectors.
        let user_vectors: Vec<Vec<f32>> = subjects
            .iter()
            .map(|&s| data.user_vector(&data.indices_of(s), &normalizer))
            .collect();
        let mut refine = config.refine;
        refine.kmeans.k = config.k;
        let clustering = refined_fit(&user_vectors, &refine);
        let hierarchy = ClusterHierarchy::build(&clustering, &user_vectors, &config.hierarchy);

        let subject_cluster: BTreeMap<SubjectId, usize> = subjects
            .iter()
            .zip(clustering.assignments())
            .map(|(&s, &c)| (s, c))
            .collect();

        // Classifiers operate on per-subject baseline-corrected features
        // (the WEMAC processing chain's per-volunteer correction); fit
        // their normalization statistics on the corrected training maps.
        let clf_normalizer = data.fit_normalizer_corrected(subjects);

        // Per-cluster pre-training.
        let mut models = Vec::with_capacity(config.k);
        for cluster in 0..config.k {
            let members: Vec<SubjectId> = subjects
                .iter()
                .copied()
                .filter(|s| subject_cluster[s] == cluster)
                .collect();
            let model = if members.is_empty() {
                // Degenerate cluster: an untrained model (never selected by
                // CA in practice, but keeps indices aligned).
                build_model(data.windows(), config, config.seed ^ cluster as u64)
            } else {
                let full = data.corrected_dataset_for_subjects(&members, &clf_normalizer);
                let mut net = build_model(data.windows(), config, config.seed ^ cluster as u64);
                let (val, train_set) = full.split_stratified(config.val_fraction, config.seed);
                if val.is_empty() || train_set.is_empty() {
                    train::train(&mut net, &full, None, &config.train);
                } else {
                    train::train(&mut net, &train_set, Some(&val), &config.train);
                }
                net
            };
            models.push(model);
        }

        Self {
            normalizer,
            clf_normalizer,
            clustering,
            hierarchy,
            subject_cluster,
            models,
            windows: data.windows(),
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.models.len()
    }

    /// Cluster membership decided for an initial-population subject.
    pub fn cluster_of(&self, subject: SubjectId) -> Option<usize> {
        self.subject_cluster.get(&subject).copied()
    }

    /// Members of a cluster among the initial population.
    pub fn members_of(&self, cluster: usize) -> Vec<SubjectId> {
        self.subject_cluster
            .iter()
            .filter(|(_, &c)| c == cluster)
            .map(|(&s, _)| s)
            .collect()
    }

    /// The pre-trained model of a cluster.
    ///
    /// # Panics
    ///
    /// Panics when `cluster >= cluster_count()`.
    pub fn model(&self, cluster: usize) -> &Network {
        &self.models[cluster]
    }

    /// The normalization statistics fit on the initial population's *raw*
    /// maps (used for clustering and cold-start assignment).
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// The normalization statistics of the classifier path (fit on
    /// baseline-corrected maps).
    pub fn clf_normalizer(&self) -> &Normalizer {
        &self.clf_normalizer
    }

    /// The fitted global clustering.
    pub fn clustering(&self) -> &KMeansModel {
        &self.clustering
    }

    /// The sub-centroid hierarchy used for cold-start assignment.
    pub fn hierarchy(&self) -> &ClusterHierarchy {
        &self.hierarchy
    }

    /// Cold-start Cluster Assignment (paper §III-B1): assigns a new user
    /// from the *unlabeled* feature maps at `indices` (a small fraction of
    /// their data), by minimum mean distance to each cluster's internal
    /// sub-centroids.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn assign_user(&self, data: &PreparedCohort, indices: &[usize]) -> usize {
        let v = data.user_vector(indices, &self.normalizer);
        self.hierarchy.assign(&v)
    }

    /// Builds the classifier-ready dataset of one subject's recordings:
    /// baseline-corrected by that subject's full unlabeled data and
    /// normalized with the classifier statistics.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or spans multiple subjects.
    pub fn user_dataset(&self, data: &PreparedCohort, indices: &[usize]) -> Dataset {
        assert!(!indices.is_empty(), "no recordings given");
        let subject = data.cohort().recordings()[indices[0]].subject;
        assert!(
            indices
                .iter()
                .all(|&i| data.cohort().recordings()[i].subject == subject),
            "indices must belong to one subject"
        );
        let baseline = data.subject_baseline(subject);
        data.corrected_nn_dataset(indices, &baseline, &self.clf_normalizer)
    }

    /// Evaluates a cluster model on recordings `indices` of `data`
    /// (all belonging to one subject, whose baseline is applied).
    pub fn evaluate(&self, data: &PreparedCohort, cluster: usize, indices: &[usize]) -> FoldScore {
        let ds = self.user_dataset(data, indices);
        train::evaluate(&self.models[cluster], &ds)
    }

    /// Fine-tunes the model of `cluster` on a labeled dataset, returning
    /// the personalized network (the cloud copy is untouched).
    pub fn fine_tune(&self, cluster: usize, train_set: &Dataset, config: &TrainConfig) -> Network {
        let _span = clear_obs::span(clear_obs::Stage::Personalize);
        let mut net = self.models[cluster].clone();
        // A small validation carve-out retains the best checkpoint when
        // the labeled budget allows it.
        if train_set.len() >= 8 {
            let (val, tr) = train_set.split_stratified(0.25, config.seed);
            if !val.is_empty() && !tr.is_empty() {
                train::train(&mut net, &tr, Some(&val), config);
                return net;
            }
        }
        // Tiny labeled budgets cannot afford a held-out split, and
        // selecting on the labeled set itself saturates immediately (train
        // accuracy hits 100 % after one epoch and freezes the weights).
        // Run the configured epochs at the deliberately low fine-tuning
        // learning rate instead.
        train::train(&mut net, train_set, None, config);
        net
    }

    /// Feature-map window count the models expect.
    pub fn windows(&self) -> usize {
        self.windows
    }
}

/// Builds the classifier for `windows`-column feature maps.
pub fn build_model(windows: usize, config: &ClearConfig, seed: u64) -> Network {
    if config.compact_model {
        cnn_lstm_compact(clear_features::FEATURE_COUNT, windows, 2, seed)
    } else {
        cnn_lstm(clear_features::FEATURE_COUNT, windows, 2, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_clustering::quality::purity;

    fn fitted() -> (ClearConfig, PreparedCohort, CloudTraining) {
        let config = ClearConfig::quick(11);
        let data = PreparedCohort::prepare(&config);
        let subjects = data.subject_ids();
        let cloud = CloudTraining::fit(&data, &subjects, &config);
        (config, data, cloud)
    }

    #[test]
    fn cloud_training_produces_k_models() {
        let (config, _, cloud) = fitted();
        assert_eq!(cloud.cluster_count(), config.k);
        for c in 0..config.k {
            assert!(cloud.model(c).param_count() > 0);
        }
    }

    #[test]
    fn every_subject_gets_a_cluster() {
        let (config, data, cloud) = fitted();
        let mut covered = 0;
        for s in data.subject_ids() {
            let c = cloud
                .cluster_of(s)
                .expect("subject missing from clustering");
            assert!(c < config.k);
            covered += 1;
        }
        assert_eq!(covered, config.cohort.total_subjects());
    }

    #[test]
    fn clustering_recovers_archetypes_reasonably() {
        let (_, data, cloud) = fitted();
        let subjects = data.subject_ids();
        let predicted: Vec<usize> = subjects
            .iter()
            .map(|&s| cloud.cluster_of(s).unwrap())
            .collect();
        let truth: Vec<usize> = subjects.iter().map(|&s| data.archetype_of(s)).collect();
        let p = purity(&predicted, &truth);
        assert!(p >= 0.7, "cluster purity {p} too low");
    }

    #[test]
    fn assignment_of_training_subjects_is_consistent() {
        // Assigning an initial-population subject through the cold-start
        // path should usually land in their own cluster.
        let (_, data, cloud) = fitted();
        let mut hits = 0;
        let subjects = data.subject_ids();
        for &s in &subjects {
            let assigned = cloud.assign_user(&data, &data.indices_of(s));
            if assigned == cloud.cluster_of(s).unwrap() {
                hits += 1;
            }
        }
        assert!(
            hits * 10 >= subjects.len() * 7,
            "only {hits}/{} self-assignments",
            subjects.len()
        );
    }

    #[test]
    fn evaluation_and_fine_tune_run() {
        let (config, data, cloud) = fitted();
        let subjects = data.subject_ids();
        let s = subjects[0];
        let cluster = cloud.cluster_of(s).unwrap();
        let idx = data.indices_of(s);
        let score = cloud.evaluate(&data, cluster, &idx);
        assert!(score.accuracy >= 0.0 && score.accuracy <= 1.0);
        let ds = cloud.user_dataset(&data, &idx);
        let personalized = cloud.fine_tune(cluster, &ds, &config.finetune);
        assert_eq!(
            personalized.param_count(),
            cloud.model(cluster).param_count()
        );
    }

    #[test]
    #[should_panic(expected = "at least k subjects")]
    fn too_few_subjects_panics() {
        let config = ClearConfig::quick(13);
        let data = PreparedCohort::prepare(&config);
        let subjects = &data.subject_ids()[..2];
        let _ = CloudTraining::fit(&data, subjects, &config);
    }
}
