//! Raw physiological signal synthesis.
//!
//! Generates the three wearable modalities of the WEMAC protocol with
//! realistic morphology so the downstream feature extractor performs the
//! same work it would on real data:
//!
//! * **BVP** — an integrate-and-fire pulse train: inter-beat intervals carry
//!   LF (Mayer-wave, ~0.1 Hz) and HF (respiratory, ~0.27 Hz) modulation;
//!   each beat emits a systolic wave with an exponential decay and a
//!   dicrotic bump; fear raises heart rate, suppresses HRV, shifts LF/HF
//!   balance, and (for vascular responders) shrinks pulse amplitude.
//! * **GSR** — tonic level with slow drift plus phasic SCRs: Poisson event
//!   arrivals convolved with a Bateman-like kernel (fast rise, slow decay);
//!   fear raises the event rate, amplitudes and tonic level.
//! * **SKT** — slow thermal dynamics: baseline plus a stimulus-driven
//!   linear drift (vasoconstriction cooling or paradoxical warming) with
//!   very-low-frequency fluctuation.

use crate::subject::SubjectProfile;
use crate::Emotion;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sampling rates and stimulus duration of the simulated recording chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalConfig {
    /// BVP sampling rate, Hz (wearable photoplethysmograph).
    pub fs_bvp: f32,
    /// GSR sampling rate, Hz.
    pub fs_gsr: f32,
    /// SKT sampling rate, Hz.
    pub fs_skt: f32,
    /// Length of one stimulus recording, seconds.
    pub stimulus_secs: f32,
}

impl Default for SignalConfig {
    fn default() -> Self {
        Self {
            fs_bvp: 64.0,
            fs_gsr: 8.0,
            fs_skt: 4.0,
            stimulus_secs: 60.0,
        }
    }
}

impl SignalConfig {
    /// Number of BVP samples in one recording.
    pub fn bvp_len(&self) -> usize {
        (self.fs_bvp * self.stimulus_secs) as usize
    }
    /// Number of GSR samples in one recording.
    pub fn gsr_len(&self) -> usize {
        (self.fs_gsr * self.stimulus_secs) as usize
    }
    /// Number of SKT samples in one recording.
    pub fn skt_len(&self) -> usize {
        (self.fs_skt * self.stimulus_secs) as usize
    }
}

/// The evoked-response magnitude of one recording.
///
/// Fear recordings get `intensity ≈ 1`; non-fear recordings still carry a
/// small arousal component (`class_overlap` × the same pattern), which is
/// what makes the classification task hard rather than trivial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evocation {
    /// Stimulus label.
    pub emotion: Emotion,
    /// Scales the subject's evoked pattern; drawn per recording.
    pub intensity: f32,
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(1e-6..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Effective evoked-response drive in `[0, ~1.7]` for this recording.
fn drive(subject: &SubjectProfile, evocation: &Evocation, class_overlap: f32) -> f32 {
    let base = match evocation.emotion {
        Emotion::Fear => 1.0,
        Emotion::NonFear => class_overlap,
    };
    (base * evocation.intensity * subject.response_gain).max(0.0)
}

/// Synthesizes one BVP trace.
pub fn synth_bvp<R: Rng + ?Sized>(
    subject: &SubjectProfile,
    evocation: &Evocation,
    class_overlap: f32,
    config: &SignalConfig,
    rng: &mut R,
) -> Vec<f32> {
    let p = &subject.params;
    let d = drive(subject, evocation, class_overlap);
    let fs = config.fs_bvp;
    let n = config.bvp_len();

    let hr = (p.base_hr + p.hr_react * d).clamp(40.0, 180.0);
    let hrv_amp = (p.hrv_mod * (1.0 - p.hrv_suppression * d.min(1.2))).clamp(0.003, 0.2);
    let amp = (p.bvp_amp * (1.0 - (1.0 - p.bvp_amp_react) * d.min(1.2))).max(0.1);
    // Fear shifts sympathovagal balance towards LF.
    let lf_share = (0.45 + 0.35 * d.min(1.0)).min(0.9);

    // Generate beat times by integrate-and-fire over modulated IBIs.
    let duration = config.stimulus_secs;
    let mut beat_times: Vec<f32> = Vec::new();
    let mut t = rng.gen_range(0.0..0.8f32);
    while t < duration + 2.0 {
        let lf = (2.0 * std::f32::consts::PI * 0.095 * t).sin();
        let hf = (2.0 * std::f32::consts::PI * 0.27 * t).sin();
        let modulation = hrv_amp * (lf_share * lf + (1.0 - lf_share) * hf) + 0.008 * gauss(rng);
        let ibi = (60.0 / hr) * (1.0 + modulation);
        beat_times.push(t);
        t += ibi.clamp(0.3, 2.0);
    }

    // Render the pulse train.
    let mut out = vec![0.0f32; n];
    for &bt in &beat_times {
        let start = (bt * fs) as isize;
        // One pulse spans at most ~1.5 s.
        let span = (1.5 * fs) as isize;
        for i in start.max(0)..(start + span).min(n as isize) {
            let dt = i as f32 / fs - bt;
            if dt < 0.0 {
                continue;
            }
            let systolic = (-(dt * 9.0)).exp();
            let dicrotic = 0.22 * (-((dt - 0.38) * 11.0).powi(2)).exp();
            out[i as usize] += amp * (systolic + dicrotic);
        }
    }
    // Sensor noise and slight baseline wander.
    for (i, v) in out.iter_mut().enumerate() {
        let t = i as f32 / fs;
        *v +=
            subject.noise_level * gauss(rng) + 0.03 * (2.0 * std::f32::consts::PI * 0.18 * t).sin();
    }
    out
}

/// Synthesizes one GSR (skin conductance) trace in µS.
pub fn synth_gsr<R: Rng + ?Sized>(
    subject: &SubjectProfile,
    evocation: &Evocation,
    class_overlap: f32,
    config: &SignalConfig,
    rng: &mut R,
) -> Vec<f32> {
    let p = &subject.params;
    let d = drive(subject, evocation, class_overlap);
    let fs = config.fs_gsr;
    let n = config.gsr_len();
    let duration = config.stimulus_secs;

    let tonic = p.base_tonic_gsr + p.tonic_gsr_react * d;
    let scr_rate_per_sec = (p.base_scr_rate + p.scr_rate_react * d) / 60.0;
    let scr_amp = 0.18 * (1.0 + (p.scr_amp_react - 1.0) * d.min(1.2));

    // Poisson SCR arrivals via exponential inter-arrival times.
    let mut events: Vec<(f32, f32)> = Vec::new();
    let mut t = 0.0f32;
    loop {
        let u: f32 = rng.gen_range(1e-6..1.0f32);
        t += -u.ln() / scr_rate_per_sec.max(1e-4);
        if t >= duration {
            break;
        }
        let a = scr_amp * rng.gen_range(0.5..1.5f32);
        events.push((t, a));
    }

    let mut out = vec![0.0f32; n];
    for (et, ea) in &events {
        let start = (et * fs) as usize;
        let span = (12.0 * fs) as usize; // SCR kernel spans ~12 s
        for i in start..(start + span).min(n) {
            let dt = i as f32 / fs - et;
            if dt < 0.0 {
                continue;
            }
            // Bateman-like: difference of exponentials (rise 0.7 s, decay 3.5 s).
            let kernel = (-(dt / 3.5)).exp() - (-(dt / 0.7)).exp();
            out[i] += ea * kernel * 1.6; // 1.6 normalizes kernel peak ≈ 1
        }
    }
    // Tonic level with slow drift + measurement noise.
    let drift_slope = 0.10 * d + 0.02 * gauss(rng); // µS per minute
    for (i, v) in out.iter_mut().enumerate() {
        let t = i as f32 / fs;
        *v += tonic
            + drift_slope * t / 60.0
            + 0.05 * (2.0 * std::f32::consts::PI * 0.01 * t).sin()
            + subject.noise_level * 0.25 * gauss(rng);
        *v = v.max(0.05);
    }
    out
}

/// Synthesizes one SKT (skin temperature) trace in °C.
pub fn synth_skt<R: Rng + ?Sized>(
    subject: &SubjectProfile,
    evocation: &Evocation,
    class_overlap: f32,
    config: &SignalConfig,
    rng: &mut R,
) -> Vec<f32> {
    let p = &subject.params;
    let d = drive(subject, evocation, class_overlap);
    let fs = config.fs_skt;
    let n = config.skt_len();

    let slope_per_min = p.skt_slope_react * d + 0.01 * gauss(rng);
    let phase = rng.gen_range(0.0..std::f32::consts::TAU);
    (0..n)
        .map(|i| {
            let t = i as f32 / fs;
            p.base_skt
                + slope_per_min * t / 60.0
                + 0.04 * (2.0 * std::f32::consts::PI * 0.005 * t + phase).sin()
                + subject.noise_level * 0.12 * gauss(rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::ArchetypeId;
    use crate::subject::IdiosyncrasyScale;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn subject(arch: usize, seed: u64) -> SubjectProfile {
        let mut rng = SmallRng::seed_from_u64(seed);
        SubjectProfile::sample(0, ArchetypeId(arch), IdiosyncrasyScale(0.0), &mut rng)
    }

    fn fear() -> Evocation {
        Evocation {
            emotion: Emotion::Fear,
            intensity: 1.0,
        }
    }

    fn calm() -> Evocation {
        Evocation {
            emotion: Emotion::NonFear,
            intensity: 1.0,
        }
    }

    #[test]
    fn signal_lengths_match_config() {
        let cfg = SignalConfig::default();
        let s = subject(0, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(
            synth_bvp(&s, &fear(), 0.2, &cfg, &mut rng).len(),
            cfg.bvp_len()
        );
        assert_eq!(
            synth_gsr(&s, &fear(), 0.2, &cfg, &mut rng).len(),
            cfg.gsr_len()
        );
        assert_eq!(
            synth_skt(&s, &fear(), 0.2, &cfg, &mut rng).len(),
            cfg.skt_len()
        );
        assert_eq!(cfg.bvp_len(), 3840);
        assert_eq!(cfg.gsr_len(), 480);
        assert_eq!(cfg.skt_len(), 240);
    }

    #[test]
    fn fear_raises_heart_rate_in_rendered_bvp() {
        let cfg = SignalConfig::default();
        let s = subject(0, 1); // cardiac responder
        let mut rng = SmallRng::seed_from_u64(3);
        let bvp_fear = synth_bvp(&s, &fear(), 0.2, &cfg, &mut rng);
        let bvp_calm = synth_bvp(&s, &calm(), 0.2, &cfg, &mut rng);
        let beats_fear = clear_dsp::peaks::detect_beats(&bvp_fear, cfg.fs_bvp).unwrap();
        let beats_calm = clear_dsp::peaks::detect_beats(&bvp_calm, cfg.fs_bvp).unwrap();
        // Fear HR ≈ 82 bpm vs calm ≈ 70.8 bpm over 60 s.
        assert!(
            beats_fear.len() as f32 > beats_calm.len() as f32 + 5.0,
            "fear {} calm {}",
            beats_fear.len(),
            beats_calm.len()
        );
    }

    #[test]
    fn fear_raises_gsr_level_for_electrodermal_responder() {
        let cfg = SignalConfig::default();
        let s = subject(1, 1);
        let mut rng = SmallRng::seed_from_u64(4);
        let g_fear = synth_gsr(&s, &fear(), 0.2, &cfg, &mut rng);
        let g_calm = synth_gsr(&s, &calm(), 0.2, &cfg, &mut rng);
        let mean = |x: &[f32]| x.iter().sum::<f32>() / x.len() as f32;
        assert!(mean(&g_fear) > mean(&g_calm) + 0.4);
    }

    #[test]
    fn fear_cools_skin_for_vascular_responder() {
        let cfg = SignalConfig::default();
        let s = subject(2, 1);
        let mut rng = SmallRng::seed_from_u64(5);
        let t_fear = synth_skt(&s, &fear(), 0.2, &cfg, &mut rng);
        // End-minus-start drop of ≈ 0.45 °C over the minute.
        let head = t_fear[..20].iter().sum::<f32>() / 20.0;
        let tail = t_fear[t_fear.len() - 20..].iter().sum::<f32>() / 20.0;
        assert!(head - tail > 0.2, "drop {}", head - tail);
    }

    #[test]
    fn gsr_is_positive_conductance() {
        let cfg = SignalConfig::default();
        let mut rng = SmallRng::seed_from_u64(6);
        for arch in 0..4 {
            let s = subject(arch, 10 + arch as u64);
            let g = synth_gsr(&s, &fear(), 0.2, &cfg, &mut rng);
            assert!(g.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let cfg = SignalConfig::default();
        let s = subject(0, 1);
        let a = synth_bvp(&s, &fear(), 0.2, &cfg, &mut SmallRng::seed_from_u64(9));
        let b = synth_bvp(&s, &fear(), 0.2, &cfg, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn signals_are_finite() {
        let cfg = SignalConfig::default();
        let mut rng = SmallRng::seed_from_u64(12);
        for arch in 0..4 {
            let s = subject(arch, 20 + arch as u64);
            for evo in [fear(), calm()] {
                assert!(synth_bvp(&s, &evo, 0.2, &cfg, &mut rng)
                    .iter()
                    .all(|v| v.is_finite()));
                assert!(synth_gsr(&s, &evo, 0.2, &cfg, &mut rng)
                    .iter()
                    .all(|v| v.is_finite()));
                assert!(synth_skt(&s, &evo, 0.2, &cfg, &mut rng)
                    .iter()
                    .all(|v| v.is_finite()));
            }
        }
    }
}
