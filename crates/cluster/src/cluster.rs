//! The partitioned, replicated serving cluster.
//!
//! [`ServeCluster`] owns a set of member [`ServeEngine`]s and routes
//! every user to one *partition* (consistent hash of the user id, stable
//! across membership changes). Each partition has a **leader** engine
//! that serves all traffic and a **follower** engine kept current by
//! *WAL shipping*: after every mutation the leader exports the WAL
//! suffix past the follower's acknowledged LSN and sends it through the
//! [`Transport`]. Followers replay the records — which carry logged
//! *results*, never inputs — so replication costs no training and the
//! follower's registry is bit-identical to the leader's at every acked
//! LSN.
//!
//! The shipping path is defensive end to end: duplicate frames dedupe by
//! LSN, gaps are detected and re-shipped, lost frames and acks are
//! retried with exponential backoff, and a follower that detects
//! divergence (a frame that contradicts its own state) latches itself
//! quarantined until reseeded from a leader snapshot. Failures of whole
//! members are first-class: [`ServeCluster::kill_member`] (crash, disk
//! survives) triggers failover — the follower catches up from the dead
//! leader's disk and is promoted — while [`ServeCluster::destroy_member`]
//! (disk lost) promotes only a fully-acked follower and otherwise
//! degrades the partition to read-only follower serving rather than
//! silently dropping acknowledged writes.

use clear_core::deployment::{
    ClearBundle, Onboarding, PersonalizeOutcome, Prediction, ServingPolicy,
};
use clear_durable::{
    read_records, DurableConfig, DurableError, EngineSnapshot, MemStorage, Storage, WalRecord,
};
use clear_features::FeatureMap;
use clear_nn::train::TrainConfig;
use clear_obs::counters;
use clear_serve::{EngineConfig, ServeEngine, ServeError};
use clear_sim::Emotion;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::net::{Envelope, Message, Transport};
use crate::ring::Partitioner;
use crate::MemberId;

/// Errors of the cluster layer.
#[derive(Debug)]
pub enum ClusterError {
    /// The partition currently has no live leader (and, for reads, no
    /// servable follower). Mutations are rejected rather than risked.
    PartitionUnavailable {
        /// The affected partition.
        partition: usize,
    },
    /// `flush` could not drive the follower to the leader's LSN within
    /// the configured retries/backoff.
    ReplicationTimeout {
        /// The lagging partition.
        partition: usize,
        /// Records still unacknowledged.
        lag: u64,
    },
    /// The follower latched itself after detecting divergence; it must
    /// be reseeded before replication can resume.
    FollowerDiverged {
        /// The affected partition.
        partition: usize,
        /// The latched follower.
        member: MemberId,
    },
    /// The member id is not part of the cluster.
    UnknownMember(MemberId),
    /// The target member is known but not up.
    MemberDown(MemberId),
    /// A cluster needs at least one member.
    NoMembers,
    /// An underlying engine operation failed.
    Serve(ServeError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::PartitionUnavailable { partition } => {
                write!(f, "partition {partition} has no live leader")
            }
            ClusterError::ReplicationTimeout { partition, lag } => write!(
                f,
                "partition {partition} replication timed out with {lag} unacknowledged records"
            ),
            ClusterError::FollowerDiverged { partition, member } => write!(
                f,
                "follower {member} of partition {partition} latched after divergence"
            ),
            ClusterError::UnknownMember(m) => write!(f, "member {m} is not part of the cluster"),
            ClusterError::MemberDown(m) => write!(f, "member {m} is down"),
            ClusterError::NoMembers => write!(f, "a cluster needs at least one member"),
            ClusterError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for ClusterError {
    fn from(e: ServeError) -> Self {
        ClusterError::Serve(e)
    }
}

impl From<DurableError> for ClusterError {
    fn from(e: DurableError) -> Self {
        ClusterError::Serve(ServeError::Durable(e))
    }
}

/// Cluster-level knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Fixed partition count (floor 1). A user's partition is
    /// `hash(user) % partitions` forever; only partition *placement*
    /// moves with membership.
    pub partitions: usize,
    /// Virtual nodes per member on the placement ring.
    pub vnodes: usize,
    /// Per-member engine configuration.
    pub engine: EngineConfig,
    /// Re-ship attempts after the first before a partition is declared
    /// lagging (each attempt doubles the tick budget, capped at 16×).
    pub ship_retries: usize,
    /// Network ticks granted to the first shipping attempt.
    pub ship_timeout_ticks: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            partitions: 8,
            vnodes: 64,
            engine: EngineConfig::default(),
            ship_retries: 4,
            ship_timeout_ticks: 8,
        }
    }
}

/// One member's copy of one partition: its private storage (the
/// "disk"), the engine running over it (None while the member is down),
/// and the divergence latch.
struct Replica {
    storage: Arc<MemStorage>,
    engine: Option<ServeEngine>,
    latched: bool,
}

/// Liveness of a member process.
#[derive(Debug, Clone, Copy)]
struct Member {
    up: bool,
}

/// Per-partition replication bookkeeping, all from the orchestrator's
/// point of view.
#[derive(Debug, Clone, Copy)]
struct PartitionState {
    /// Serving leader. `None` only after a destroy with a lagging
    /// follower (promoting would drop acknowledged writes).
    leader: Option<MemberId>,
    /// Replication target, when one exists.
    follower: Option<MemberId>,
    /// Highest LSN the follower has acknowledged.
    acked: u64,
    /// The leader's WAL tip as of the last shipping attempt.
    leader_last: u64,
    /// Shipping attempts that needed a retry (for tests/bench).
    retries: u64,
}

/// A partitioned, replicated cluster of serving engines. Single-threaded
/// by design: it is the *orchestration* layer, and determinism — the
/// same call sequence always produces the same replication schedule — is
/// what makes the fault-matrix tests able to demand bit-identical
/// convergence.
pub struct ServeCluster {
    bundle: ClearBundle,
    policy: ServingPolicy,
    config: ClusterConfig,
    partitioner: Partitioner,
    members: BTreeMap<MemberId, Member>,
    partitions: Vec<PartitionState>,
    replicas: HashMap<(MemberId, usize), Replica>,
    net: Box<dyn Transport>,
}

impl ServeCluster {
    /// Builds a cluster over `member_ids`, placing every partition's
    /// leader and follower via consistent hashing and creating fresh
    /// durable engines (in-memory disks, WAL-logged) for each replica.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoMembers`] for an empty member list, or any
    /// engine-construction error.
    pub fn new(
        bundle: ClearBundle,
        policy: ServingPolicy,
        member_ids: &[MemberId],
        config: ClusterConfig,
        net: Box<dyn Transport>,
    ) -> Result<Self, ClusterError> {
        if member_ids.is_empty() {
            return Err(ClusterError::NoMembers);
        }
        let mut partitioner = Partitioner::new(config.partitions, config.vnodes);
        let mut members = BTreeMap::new();
        for &m in member_ids {
            partitioner.add_member(m);
            members.insert(m, Member { up: true });
        }
        let mut cluster = Self {
            bundle,
            policy,
            config,
            partitioner,
            members,
            partitions: Vec::new(),
            replicas: HashMap::new(),
            net,
        };
        for partition in 0..cluster.partitioner.partitions() {
            let leader = cluster
                .partitioner
                .leader_of(partition)
                .ok_or(ClusterError::NoMembers)?;
            let replica = cluster.blank_replica()?;
            cluster.replicas.insert((leader, partition), replica);
            let follower = cluster.partitioner.follower_of(partition);
            if let Some(f) = follower {
                let replica = cluster.blank_replica()?;
                cluster.replicas.insert((f, partition), replica);
            }
            cluster.partitions.push(PartitionState {
                leader: Some(leader),
                follower,
                acked: 0,
                leader_last: 0,
                retries: 0,
            });
        }
        Ok(cluster)
    }

    /// A fresh replica: empty in-memory disk, durable engine over it.
    /// Automatic snapshots stay off — the cluster checkpoints explicitly
    /// so it can gate truncation on replication progress.
    fn blank_replica(&self) -> Result<Replica, ClusterError> {
        let storage = Arc::new(MemStorage::new());
        let engine = ServeEngine::recover_with(
            Arc::clone(&storage) as Arc<dyn Storage>,
            self.bundle.clone(),
            self.policy,
            self.config.engine,
            DurableConfig {
                snapshot_every_ops: 0,
            },
        )?;
        Ok(Replica {
            storage,
            engine: Some(engine),
            latched: false,
        })
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The partition serving `user`.
    pub fn partition_of(&self, user: &str) -> usize {
        self.partitioner.partition_of(user)
    }

    /// Current leader of a partition (may be a down member after a
    /// crash that left no viable follower; see [`ServeCluster::is_up`]).
    pub fn leader_of_partition(&self, partition: usize) -> Option<MemberId> {
        self.partitions[partition].leader
    }

    /// Current follower of a partition.
    pub fn follower_of_partition(&self, partition: usize) -> Option<MemberId> {
        self.partitions[partition].follower
    }

    /// Records the follower has yet to acknowledge for a partition.
    pub fn lag_of(&self, partition: usize) -> u64 {
        let st = &self.partitions[partition];
        st.leader_last.saturating_sub(st.acked)
    }

    /// Shipping attempts that needed at least one retry, per partition.
    pub fn retries_of(&self, partition: usize) -> u64 {
        self.partitions[partition].retries
    }

    /// Whether a member process is up.
    pub fn is_up(&self, member: MemberId) -> bool {
        self.members.get(&member).is_some_and(|m| m.up)
    }

    /// Whether a member's replica of a partition has latched itself
    /// after detecting divergence.
    pub fn is_latched(&self, member: MemberId, partition: usize) -> bool {
        self.replicas
            .get(&(member, partition))
            .is_some_and(|r| r.latched)
    }

    /// All member ids, up or down.
    pub fn member_ids(&self) -> Vec<MemberId> {
        self.members.keys().copied().collect()
    }

    /// Direct access to the transport, for fault scripting in tests
    /// (partitioning links, injecting traffic).
    pub fn net_mut(&mut self) -> &mut dyn Transport {
        &mut *self.net
    }

    fn require_member(&self, member: MemberId) -> Result<(), ClusterError> {
        if self.members.contains_key(&member) {
            Ok(())
        } else {
            Err(ClusterError::UnknownMember(member))
        }
    }

    fn replica_engine(
        &self,
        member: MemberId,
        partition: usize,
    ) -> Result<&ServeEngine, ClusterError> {
        self.replicas
            .get(&(member, partition))
            .and_then(|r| r.engine.as_ref())
            .ok_or(ClusterError::PartitionUnavailable { partition })
    }

    /// The engine that can answer *reads* for `user` right now: the live
    /// leader, else the live unlatched follower.
    fn serving_engine(&self, user: &str) -> Result<&ServeEngine, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        let st = &self.partitions[partition];
        if let Some(l) = st.leader.filter(|&m| self.is_up(m)) {
            return self.replica_engine(l, partition);
        }
        if let Some(f) = st
            .follower
            .filter(|&m| self.is_up(m) && !self.is_latched(m, partition))
        {
            return self.replica_engine(f, partition);
        }
        Err(ClusterError::PartitionUnavailable { partition })
    }

    /// The user's current model generation stamp.
    pub fn generation_of(&self, user: &str) -> Result<u64, ClusterError> {
        Ok(self.serving_engine(user)?.generation_of(user)?)
    }

    /// The cluster model the user was assigned to.
    pub fn cluster_of(&self, user: &str) -> Result<usize, ClusterError> {
        Ok(self.serving_engine(user)?.cluster_of(user)?)
    }

    /// Good maps buffered for a user whose onboarding is still deferred.
    pub fn pending_maps(&self, user: &str) -> Result<usize, ClusterError> {
        Ok(self.serving_engine(user)?.pending_maps(user))
    }

    /// Highest LSN the follower of `partition` has acknowledged.
    pub fn acked_of(&self, partition: usize) -> u64 {
        self.partitions[partition].acked
    }

    /// Whether the user has an adopted personalized fork.
    pub fn is_personalized(&self, user: &str) -> Result<bool, ClusterError> {
        Ok(self.serving_engine(user)?.is_personalized(user))
    }

    /// Windows quarantined so far for the user.
    pub fn quarantined_count(&self, user: &str) -> Result<usize, ClusterError> {
        Ok(self.serving_engine(user)?.quarantined_count(user))
    }

    fn mutable_leader(&self, partition: usize) -> Result<MemberId, ClusterError> {
        match self.partitions[partition].leader.filter(|&m| self.is_up(m)) {
            Some(m) => Ok(m),
            None => {
                clear_obs::counter_add(counters::CLUSTER_PARTITION_UNAVAILABLE, 1);
                Err(ClusterError::PartitionUnavailable { partition })
            }
        }
    }

    fn update_lag_gauge(&self) {
        let lag = (0..self.partitions.len())
            .map(|p| self.lag_of(p))
            .max()
            .unwrap_or(0);
        clear_obs::gauge_set(clear_obs::CLUSTER_FOLLOWER_LAG_GAUGE, lag as i64);
    }

    // ------------------------------------------------------------------
    // Serving API
    // ------------------------------------------------------------------

    /// Onboards a user on their partition's leader, then replicates.
    pub fn onboard(&mut self, user: &str, maps: &[FeatureMap]) -> Result<Onboarding, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        let leader = self.mutable_leader(partition)?;
        let out = self.replica_engine(leader, partition)?.onboard(user, maps)?;
        self.replicate(partition)?;
        Ok(out)
    }

    /// Serves predictions for a user. On a healthy partition this is the
    /// leader path (quarantine commits, then replicates). On a
    /// leaderless partition it degrades to *read-only* follower serving:
    /// identical bits, no state commits.
    pub fn predict(
        &mut self,
        user: &str,
        maps: &[FeatureMap],
    ) -> Result<Vec<Prediction>, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        if let Some(leader) = self.partitions[partition].leader.filter(|&m| self.is_up(m)) {
            let out = self.replica_engine(leader, partition)?.predict(user, maps)?;
            self.replicate(partition)?;
            return Ok(out);
        }
        let follower = self.partitions[partition]
            .follower
            .filter(|&m| self.is_up(m) && !self.is_latched(m, partition));
        let Some(follower) = follower else {
            clear_obs::counter_add(counters::CLUSTER_PARTITION_UNAVAILABLE, 1);
            return Err(ClusterError::PartitionUnavailable { partition });
        };
        clear_obs::counter_add(counters::CLUSTER_READONLY_SERVES, 1);
        Ok(self
            .replica_engine(follower, partition)?
            .predict_readonly(user, maps)?)
    }

    /// Personalizes a user on their partition's leader, then replicates
    /// the adopted delta (followers apply the logged weights — they
    /// never retrain).
    pub fn personalize(
        &mut self,
        user: &str,
        labeled: &[(FeatureMap, Emotion)],
        config: &TrainConfig,
    ) -> Result<PersonalizeOutcome, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        let leader = self.mutable_leader(partition)?;
        let out = self
            .replica_engine(leader, partition)?
            .personalize(user, labeled, config)?;
        self.replicate(partition)?;
        Ok(out)
    }

    /// Offboards a user on their partition's leader, then replicates.
    pub fn offboard(&mut self, user: &str) -> Result<bool, ClusterError> {
        let partition = self.partitioner.partition_of(user);
        let leader = self.mutable_leader(partition)?;
        let out = self.replica_engine(leader, partition)?.offboard(user)?;
        self.replicate(partition)?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// Advances the network one tick and processes every live member's
    /// inbox. Exposed so tests can drive partial delivery schedules.
    pub fn pump(&mut self) {
        self.net.tick();
        let live: Vec<MemberId> = self
            .members
            .iter()
            .filter(|(_, m)| m.up)
            .map(|(&id, _)| id)
            .collect();
        for member in live {
            for env in self.net.poll(member) {
                self.deliver(member, env);
            }
        }
    }

    /// Handles one delivered envelope at `to`.
    fn deliver(&mut self, to: MemberId, env: Envelope) {
        match env.msg {
            Message::Ship { partition, records } => {
                if partition >= self.partitions.len()
                    || self.partitions[partition].follower != Some(to)
                {
                    return; // stale traffic for a role this member no longer holds
                }
                let mut ack = None;
                if let Some(replica) = self.replicas.get_mut(&(to, partition)) {
                    if replica.latched {
                        ack = Some((0, true));
                    } else if let Some(engine) = replica.engine.as_ref() {
                        let before = engine.wal_last_lsn().unwrap_or(0);
                        match engine.import_records(&records) {
                            Ok(report) => {
                                let diverged = report.diverged.is_some();
                                if diverged {
                                    replica.latched = true;
                                    clear_obs::counter_add(
                                        counters::CLUSTER_FOLLOWER_DIVERGENCE,
                                        1,
                                    );
                                }
                                let applied = report.applied_through.max(before);
                                clear_obs::counter_add(
                                    counters::CLUSTER_FRAMES_ACKED,
                                    applied.saturating_sub(before),
                                );
                                ack = Some((applied, diverged));
                            }
                            Err(_) => {
                                replica.latched = true;
                                clear_obs::counter_add(counters::CLUSTER_FOLLOWER_DIVERGENCE, 1);
                                ack = Some((0, true));
                            }
                        }
                    }
                }
                if let Some((applied_through, diverged)) = ack {
                    self.net.send(Envelope {
                        from: to,
                        to: env.from,
                        msg: Message::ShipAck {
                            partition,
                            applied_through,
                            diverged,
                        },
                    });
                }
            }
            Message::ShipAck {
                partition,
                applied_through,
                diverged,
            } => {
                if partition >= self.partitions.len() {
                    return;
                }
                let st = &mut self.partitions[partition];
                if st.leader != Some(to) || st.follower != Some(env.from) {
                    return; // ack from a demoted or stale pairing
                }
                if diverged {
                    if let Some(r) = self.replicas.get_mut(&(env.from, partition)) {
                        r.latched = true;
                    }
                } else {
                    st.acked = st.acked.max(applied_through);
                }
            }
        }
    }

    /// Ships the leader's WAL suffix past the acked LSN to the follower,
    /// with bounded retries and exponential backoff. Replication lag is
    /// not an error here — mutations stay committed on the leader and
    /// [`ServeCluster::flush`] reports persistent lag as a typed
    /// timeout.
    fn replicate(&mut self, partition: usize) -> Result<(), ClusterError> {
        let _span = clear_obs::span(clear_obs::Stage::ClusterShip);
        let (leader, follower) = {
            let st = &self.partitions[partition];
            (st.leader, st.follower)
        };
        let Some(leader) = leader.filter(|&m| self.is_up(m)) else {
            return Ok(());
        };
        let leader_last = self
            .replica_engine(leader, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        self.partitions[partition].leader_last = leader_last;
        let Some(follower) = follower.filter(|&m| self.is_up(m)) else {
            self.update_lag_gauge();
            return Ok(());
        };
        if self.is_latched(follower, partition) {
            self.update_lag_gauge();
            return Ok(());
        }
        let mut attempt: usize = 0;
        while self.partitions[partition].acked < leader_last
            && attempt <= self.config.ship_retries
        {
            let acked = self.partitions[partition].acked;
            let records = self
                .replica_engine(leader, partition)?
                .export_records_after(acked)?;
            if records.first().is_some_and(|r| r.lsn > acked + 1) {
                // The follower is behind the leader's snapshot horizon;
                // record shipping cannot bridge that, so transfer a
                // snapshot out of band and resume shipping from there.
                let snap = self.replica_engine(leader, partition)?.export_snapshot()?;
                self.rebuild_replica_from_snapshot(follower, partition, &snap)?;
                self.partitions[partition].acked = snap.last_lsn;
                continue;
            }
            if records.is_empty() {
                break;
            }
            clear_obs::counter_add(counters::CLUSTER_FRAMES_SHIPPED, records.len() as u64);
            if attempt > 0 {
                clear_obs::counter_add(counters::CLUSTER_FRAMES_RETRIED, records.len() as u64);
                self.partitions[partition].retries += 1;
            }
            self.net.send(Envelope {
                from: leader,
                to: follower,
                msg: Message::Ship { partition, records },
            });
            let budget = self
                .config
                .ship_timeout_ticks
                .saturating_mul(1u64 << attempt.min(4))
                .max(1);
            for _ in 0..budget {
                self.pump();
                if self.partitions[partition].acked >= leader_last
                    || self.is_latched(follower, partition)
                {
                    break;
                }
            }
            if self.is_latched(follower, partition) {
                break;
            }
            attempt += 1;
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// Drives every healthy partition's replication to completion.
    ///
    /// # Errors
    ///
    /// [`ClusterError::FollowerDiverged`] for a latched follower,
    /// [`ClusterError::ReplicationTimeout`] when retries and backoff
    /// could not close the gap (e.g. the link is partitioned).
    pub fn flush(&mut self) -> Result<(), ClusterError> {
        for partition in 0..self.partitions.len() {
            let st = &self.partitions[partition];
            if st.leader.filter(|&m| self.is_up(m)).is_none() {
                continue;
            }
            let Some(follower) = st.follower else {
                continue;
            };
            if self.is_latched(follower, partition) {
                return Err(ClusterError::FollowerDiverged {
                    partition,
                    member: follower,
                });
            }
            if !self.is_up(follower) {
                continue;
            }
            self.replicate(partition)?;
            let st = &self.partitions[partition];
            if let Some(f) = st.follower {
                if self.is_latched(f, partition) {
                    return Err(ClusterError::FollowerDiverged {
                        partition,
                        member: f,
                    });
                }
            }
            if st.acked < st.leader_last {
                return Err(ClusterError::ReplicationTimeout {
                    partition,
                    lag: st.leader_last - st.acked,
                });
            }
        }
        Ok(())
    }

    /// Snapshots every leader whose follower is fully caught up (or
    /// absent/latched), truncating its WAL. Lagging partitions are
    /// skipped: truncating unshipped records would force a snapshot
    /// transfer later for no reason.
    pub fn checkpoint(&self) -> Result<(), ClusterError> {
        for partition in 0..self.partitions.len() {
            let st = &self.partitions[partition];
            let Some(leader) = st.leader.filter(|&m| self.is_up(m)) else {
                continue;
            };
            let engine = self.replica_engine(leader, partition)?;
            let last = engine.wal_last_lsn().unwrap_or(0);
            let lagging = match st.follower {
                Some(f) => !self.is_latched(f, partition) && st.acked < last,
                None => false,
            };
            if lagging {
                continue;
            }
            engine.snapshot()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Membership and failure handling
    // ------------------------------------------------------------------

    /// Rebuilds `(member, partition)` from a snapshot: fresh or reused
    /// disk, snapshot published, WAL restarted at the snapshot horizon,
    /// latch cleared.
    fn rebuild_replica_from_snapshot(
        &mut self,
        member: MemberId,
        partition: usize,
        snap: &EngineSnapshot,
    ) -> Result<(), ClusterError> {
        let replica = self
            .replicas
            .entry((member, partition))
            .or_insert_with(|| Replica {
                storage: Arc::new(MemStorage::new()),
                engine: None,
                latched: false,
            });
        // Drop the old engine before rebuilding over its storage.
        replica.engine = None;
        let storage = Arc::clone(&replica.storage) as Arc<dyn Storage>;
        let engine = ServeEngine::from_snapshot(
            storage,
            snap,
            self.bundle.clone(),
            self.policy,
            self.config.engine,
            DurableConfig {
                snapshot_every_ops: 0,
            },
        )?;
        replica.engine = Some(engine);
        replica.latched = false;
        Ok(())
    }

    /// Catches `member`'s replica up to everything on `storage` (a dead
    /// leader's surviving disk): snapshot transfer when the replica is
    /// behind the snapshot horizon, then WAL-suffix import. Replay
    /// applies logged results — nothing retrains.
    fn catch_up_from_storage(
        &mut self,
        member: MemberId,
        partition: usize,
        storage: &dyn Storage,
    ) -> Result<(), ClusterError> {
        let _span = clear_obs::span(clear_obs::Stage::ClusterCatchUp);
        let snap = EngineSnapshot::load(storage)?;
        let horizon = snap.as_ref().map_or(0, |s| s.last_lsn);
        let applied = self
            .replica_engine(member, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        if applied < horizon {
            let snap = snap.expect("positive horizon implies a snapshot");
            self.rebuild_replica_from_snapshot(member, partition, &snap)?;
        }
        let applied = self
            .replica_engine(member, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        let suffix: Vec<WalRecord> = read_records(storage)?
            .into_iter()
            .filter(|r| r.lsn > applied)
            .collect();
        if !suffix.is_empty() {
            let report = self
                .replica_engine(member, partition)?
                .import_records(&suffix)?;
            if report.gap_at.is_some() || report.diverged.is_some() {
                if let Some(r) = self.replicas.get_mut(&(member, partition)) {
                    r.latched = true;
                }
                clear_obs::counter_add(counters::CLUSTER_FOLLOWER_DIVERGENCE, 1);
                return Err(ClusterError::FollowerDiverged { partition, member });
            }
        }
        Ok(())
    }

    /// Seeds a follower for a partition on the best available member
    /// (ring preference, then any live member that is not the leader)
    /// via snapshot transfer from the live leader. No candidate is not
    /// an error — the partition simply runs unreplicated.
    fn seed_follower(&mut self, partition: usize) -> Result<(), ClusterError> {
        let Some(leader) = self.partitions[partition].leader.filter(|&m| self.is_up(m)) else {
            return Ok(());
        };
        let preferred = self
            .partitioner
            .follower_of(partition)
            .filter(|&m| m != leader && self.is_up(m));
        let candidate = preferred.or_else(|| {
            self.members
                .iter()
                .filter(|&(&m, state)| state.up && m != leader)
                .map(|(&m, _)| m)
                .next()
        });
        let Some(candidate) = candidate else {
            self.partitions[partition].follower = None;
            self.update_lag_gauge();
            return Ok(());
        };
        let _span = clear_obs::span(clear_obs::Stage::ClusterCatchUp);
        let snap = self.replica_engine(leader, partition)?.export_snapshot()?;
        self.rebuild_replica_from_snapshot(candidate, partition, &snap)?;
        let st = &mut self.partitions[partition];
        st.follower = Some(candidate);
        st.acked = snap.last_lsn;
        st.leader_last = snap.last_lsn;
        self.update_lag_gauge();
        Ok(())
    }

    /// Promotes the follower of a partition whose leader just died with
    /// its disk intact: catch up from that disk (snapshot + WAL suffix),
    /// promote, and seed a replacement follower.
    fn failover(&mut self, partition: usize) -> Result<(), ClusterError> {
        let _span = clear_obs::span(clear_obs::Stage::ClusterFailover);
        let Some(dead) = self.partitions[partition].leader else {
            return Ok(());
        };
        let viable = self.partitions[partition]
            .follower
            .filter(|&f| self.is_up(f) && !self.is_latched(f, partition));
        let Some(next) = viable else {
            // No viable follower. The dead leader keeps the role on the
            // books (its disk survives), so restart_member can resume
            // it; until then the partition rejects mutations.
            self.update_lag_gauge();
            return Ok(());
        };
        if let Some(storage) = self
            .replicas
            .get(&(dead, partition))
            .map(|r| Arc::clone(&r.storage))
        {
            self.catch_up_from_storage(next, partition, storage.as_ref())?;
        }
        clear_obs::counter_add(counters::CLUSTER_FAILOVERS, 1);
        let last = self
            .replica_engine(next, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        // The dead leader's replica served its purpose; a restarted
        // member comes back as a freshly seeded follower instead.
        self.replicas.remove(&(dead, partition));
        {
            let st = &mut self.partitions[partition];
            st.leader = Some(next);
            st.follower = None;
            st.acked = last;
            st.leader_last = last;
        }
        self.seed_follower(partition)?;
        Ok(())
    }

    /// A member process crashes; its disk survives. Partitions it led
    /// fail over (followers catch up from the surviving disk before
    /// promotion); partitions it followed get replacement followers.
    pub fn kill_member(&mut self, member: MemberId) -> Result<(), ClusterError> {
        self.require_member(member)?;
        self.members.insert(member, Member { up: false });
        // The process is gone: engines vanish, disks stay.
        for ((m, _), replica) in self.replicas.iter_mut() {
            if *m == member {
                replica.engine = None;
            }
        }
        for partition in 0..self.partitions.len() {
            if self.partitions[partition].leader == Some(member) {
                self.failover(partition)?;
            } else if self.partitions[partition].follower == Some(member) {
                self.partitions[partition].follower = None;
                self.seed_follower(partition)?;
            }
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// A member is lost *with its disk*. Partitions it led promote their
    /// follower only when fully acknowledged — otherwise acknowledged
    /// writes would silently disappear — and degrade to leaderless
    /// read-only serving until [`ServeCluster::force_promote`].
    pub fn destroy_member(&mut self, member: MemberId) -> Result<(), ClusterError> {
        self.require_member(member)?;
        self.members.insert(member, Member { up: false });
        self.replicas.retain(|&(m, _), _| m != member);
        for partition in 0..self.partitions.len() {
            let st = self.partitions[partition];
            if st.leader == Some(member) {
                let caught_up = st.follower.is_some_and(|f| {
                    self.is_up(f) && !self.is_latched(f, partition) && st.acked >= st.leader_last
                });
                if caught_up {
                    let _span = clear_obs::span(clear_obs::Stage::ClusterFailover);
                    clear_obs::counter_add(counters::CLUSTER_FAILOVERS, 1);
                    let next = st.follower.expect("caught_up implies follower");
                    let last = self
                        .replica_engine(next, partition)?
                        .wal_last_lsn()
                        .unwrap_or(0);
                    {
                        let st = &mut self.partitions[partition];
                        st.leader = Some(next);
                        st.follower = None;
                        st.acked = last;
                        st.leader_last = last;
                    }
                    self.seed_follower(partition)?;
                } else {
                    self.partitions[partition].leader = None;
                }
            } else if st.follower == Some(member) {
                self.partitions[partition].follower = None;
                self.seed_follower(partition)?;
            }
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// Promotes the follower of a leaderless partition, accepting the
    /// loss of whatever the destroyed leader had not replicated. An
    /// explicit operator decision, never automatic.
    pub fn force_promote(&mut self, partition: usize) -> Result<(), ClusterError> {
        if self.partitions[partition].leader.is_some() {
            return Ok(());
        }
        let viable = self.partitions[partition]
            .follower
            .filter(|&f| self.is_up(f) && !self.is_latched(f, partition));
        let Some(next) = viable else {
            clear_obs::counter_add(counters::CLUSTER_PARTITION_UNAVAILABLE, 1);
            return Err(ClusterError::PartitionUnavailable { partition });
        };
        let _span = clear_obs::span(clear_obs::Stage::ClusterFailover);
        clear_obs::counter_add(counters::CLUSTER_FAILOVERS, 1);
        let last = self
            .replica_engine(next, partition)?
            .wal_last_lsn()
            .unwrap_or(0);
        {
            let st = &mut self.partitions[partition];
            st.leader = Some(next);
            st.follower = None;
            st.acked = last;
            st.leader_last = last;
        }
        self.seed_follower(partition)?;
        Ok(())
    }

    /// Restarts a crashed member: recovers every surviving replica from
    /// its disk (snapshot seed + WAL replay — zero retraining), resumes
    /// leadership of partitions it still holds, and fills follower
    /// vacancies.
    pub fn restart_member(&mut self, member: MemberId) -> Result<(), ClusterError> {
        self.require_member(member)?;
        self.members.insert(member, Member { up: true });
        let mine: Vec<usize> = self
            .replicas
            .keys()
            .filter(|&&(m, _)| m == member)
            .map(|&(_, p)| p)
            .collect();
        for partition in mine {
            let storage = {
                let replica = self
                    .replicas
                    .get_mut(&(member, partition))
                    .expect("listed above");
                if replica.engine.is_some() {
                    continue;
                }
                Arc::clone(&replica.storage)
            };
            let engine = ServeEngine::recover_with(
                storage as Arc<dyn Storage>,
                self.bundle.clone(),
                self.policy,
                self.config.engine,
                DurableConfig {
                    snapshot_every_ops: 0,
                },
            )?;
            if let Some(replica) = self.replicas.get_mut(&(member, partition)) {
                replica.engine = Some(engine);
                replica.latched = false;
            }
            if self.partitions[partition].leader == Some(member) {
                // Resume leadership from our own disk; any surviving
                // follower may be stale, so reseed it from us.
                let last = self
                    .replica_engine(member, partition)?
                    .wal_last_lsn()
                    .unwrap_or(0);
                {
                    let st = &mut self.partitions[partition];
                    st.acked = last;
                    st.leader_last = last;
                }
                self.seed_follower(partition)?;
            }
        }
        for partition in 0..self.partitions.len() {
            let st = &self.partitions[partition];
            if st.follower.is_none()
                && st.leader.is_some_and(|l| self.is_up(l) && l != member)
            {
                self.seed_follower(partition)?;
            }
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// Moves a partition's leadership to `to` via snapshot transfer. The
    /// outgoing leader stays as the (trivially caught-up) follower, so
    /// the partition keeps a replica throughout the move.
    pub fn migrate_partition(
        &mut self,
        partition: usize,
        to: MemberId,
    ) -> Result<(), ClusterError> {
        self.require_member(to)?;
        if !self.is_up(to) {
            return Err(ClusterError::MemberDown(to));
        }
        let Some(from) = self.partitions[partition].leader.filter(|&m| self.is_up(m)) else {
            clear_obs::counter_add(counters::CLUSTER_PARTITION_UNAVAILABLE, 1);
            return Err(ClusterError::PartitionUnavailable { partition });
        };
        if from == to {
            return Ok(());
        }
        let old_follower = self.partitions[partition].follower;
        let snap = self.replica_engine(from, partition)?.export_snapshot()?;
        self.rebuild_replica_from_snapshot(to, partition, &snap)?;
        if let Some(f) = old_follower {
            if f != to && f != from {
                self.replicas.remove(&(f, partition));
            }
        }
        {
            let st = &mut self.partitions[partition];
            st.leader = Some(to);
            st.follower = Some(from);
            st.acked = snap.last_lsn;
            st.leader_last = snap.last_lsn;
        }
        clear_obs::counter_add(counters::CLUSTER_MIGRATIONS, 1);
        self.update_lag_gauge();
        Ok(())
    }

    /// Adds a brand-new member (or restarts a known one). Consistent
    /// hashing keeps movement minimal: only partitions whose ring owner
    /// became the new member migrate to it; everything else stays put.
    pub fn add_member(&mut self, member: MemberId) -> Result<(), ClusterError> {
        if self.members.contains_key(&member) {
            return self.restart_member(member);
        }
        self.members.insert(member, Member { up: true });
        self.partitioner.add_member(member);
        for partition in 0..self.partitions.len() {
            if self.partitioner.leader_of(partition) == Some(member) {
                let current = self.partitions[partition].leader.filter(|&m| self.is_up(m));
                if current.is_some_and(|m| m != member) {
                    self.migrate_partition(partition, member)?;
                }
            } else if self.partitions[partition].follower.is_none() {
                self.seed_follower(partition)?;
            }
        }
        self.update_lag_gauge();
        Ok(())
    }

    /// Removes a latched (or stale) follower and seeds a fresh one from
    /// the live leader — the recovery path after a divergence latch.
    pub fn reseed_follower(&mut self, partition: usize) -> Result<(), ClusterError> {
        if let Some(f) = self.partitions[partition].follower.take() {
            self.replicas.remove(&(f, partition));
        }
        self.seed_follower(partition)
    }
}
