//! Cross-backend equivalence grid.
//!
//! [`BlockedF32`] is specified to be **bit-identical** to the scalar
//! oracle — not approximately equal — on every architecture this repo
//! instantiates, under fresh and reused workspaces, and across weight
//! mutation. [`Int8Backend`] is specified to diverge, but boundedly. This
//! file pins both contracts over the full shape grid; the repo-level
//! golden tests pin the int8 divergence against blessed numbers.

use clear_nn::backend::BackendKind;
use clear_nn::network::{cnn_lstm, cnn_lstm_compact, cnn_lstm_custom, Network};
use clear_nn::tensor::Tensor;
use clear_nn::workspace::Workspace;

/// Every network shape the repo's tests and experiments instantiate:
/// the paper architecture at full and reduced input sizes, the compact
/// preset, and a custom build with odd channel/hidden sizes and three
/// classes to catch layout assumptions the even presets would hide.
fn shape_grid() -> Vec<(&'static str, Network, Vec<usize>)> {
    vec![
        ("paper-123x9", cnn_lstm(123, 9, 2, 41), vec![1, 123, 9]),
        ("paper-30x5", cnn_lstm(30, 5, 2, 43), vec![1, 30, 5]),
        ("paper-60x9", cnn_lstm(60, 9, 2, 47), vec![1, 60, 9]),
        ("compact-30x6", cnn_lstm_compact(30, 6, 2, 53), vec![1, 30, 6]),
        ("compact-60x9", cnn_lstm_compact(60, 9, 2, 59), vec![1, 60, 9]),
        (
            "custom-29x7x3",
            cnn_lstm_custom(29, 7, 3, 3, 5, 2, 2, 10, 0.3, 61),
            vec![1, 29, 7],
        ),
    ]
}

fn wavy_input(shape: &[usize], seed: u64) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n)
            .map(|v| ((v as f32) * 0.37 + seed as f32 * 1.7).sin())
            .collect(),
    )
}

fn logits_bits(net: &Network, x: &Tensor, ws: &mut Workspace, kind: BackendKind) -> Vec<u32> {
    net.forward_with(x, false, ws, kind.instance())
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn blocked_is_bit_identical_to_scalar_on_every_shape() {
    // One shared workspace for the blocked side: crossing shapes forces
    // rebinds and buffer reuse, which must not perturb a single bit.
    let mut ws_blocked = Workspace::new();
    for (name, net, shape) in shape_grid() {
        for seed in 0..3u64 {
            let x = wavy_input(&shape, seed);
            let mut ws_scalar = Workspace::new();
            let scalar = logits_bits(&net, &x, &mut ws_scalar, BackendKind::Scalar);
            let blocked = logits_bits(&net, &x, &mut ws_blocked, BackendKind::Blocked);
            assert_eq!(scalar, blocked, "{name} seed {seed}: blocked f32 diverged");
        }
    }
}

#[test]
fn blocked_stays_bit_identical_after_weight_mutation() {
    // The workspace caches transposed weight copies; a parameter update
    // must invalidate them on every shape, never serve stale kernels.
    for (name, mut net, shape) in shape_grid() {
        let x = wavy_input(&shape, 9);
        let mut ws = Workspace::new();
        let _ = logits_bits(&net, &x, &mut ws, BackendKind::Blocked); // warm scratch
        net.visit_params_mut(&mut |p| p.iter_mut().for_each(|v| *v *= 1.125));
        let mut fresh = Workspace::new();
        let scalar = logits_bits(&net, &x, &mut fresh, BackendKind::Scalar);
        let blocked = logits_bits(&net, &x, &mut ws, BackendKind::Blocked);
        assert_eq!(scalar, blocked, "{name}: stale prepared weights served");
    }
}

#[test]
fn int8_diverges_boundedly_on_every_shape() {
    for (name, net, shape) in shape_grid() {
        let x = wavy_input(&shape, 5);
        let mut ws = Workspace::new();
        let f32_out = net.forward(&x, false, &mut ws).clone();
        let int8_out = net
            .forward_with(&x, false, &mut ws, BackendKind::Int8.instance())
            .clone();
        let max_div = f32_out
            .as_slice()
            .iter()
            .zip(int8_out.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_div > 0.0, "{name}: int8 must actually quantize");
        assert!(max_div < 0.5, "{name}: int8 divergence {max_div} too large");
    }
}

#[test]
fn every_backend_reproduces_itself_across_workspaces() {
    // Each backend is a pure function of (weights, input): a fresh
    // workspace and a dirty reused one must produce identical bits.
    for (name, net, shape) in shape_grid().into_iter().take(3) {
        let x = wavy_input(&shape, 13);
        let warm = wavy_input(&shape, 17);
        for kind in BackendKind::all() {
            let mut fresh = Workspace::new();
            let a = logits_bits(&net, &x, &mut fresh, kind);
            let mut reused = Workspace::new();
            let _ = logits_bits(&net, &warm, &mut reused, kind);
            let b = logits_bits(&net, &x, &mut reused, kind);
            assert_eq!(a, b, "{name}/{}: workspace reuse changed bits", kind.name());
        }
    }
}
