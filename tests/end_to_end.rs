//! Cross-crate integration: the full CLEAR pipeline at quick scale.
//!
//! These tests exercise the complete path — synthetic cohort → DSP →
//! 123-feature maps → global clustering → per-cluster CNN-LSTM training →
//! cold-start assignment → fine-tuning → edge deployment — and assert the
//! *qualitative* orderings the paper claims. Quantitative reproduction at
//! paper scale lives in the `table1`/`table2` binaries (see
//! EXPERIMENTS.md).

use clear::core::config::ClearConfig;
use clear::core::dataset::PreparedCohort;
use clear::core::evaluation::{clear_folds, general_model};
use clear::core::pipeline::CloudTraining;
use clear::edge::{Device, EdgeDeployment};

fn quick() -> (ClearConfig, PreparedCohort) {
    let config = ClearConfig::quick(33);
    let data = PreparedCohort::prepare(&config);
    (config, data)
}

#[test]
fn full_pipeline_produces_sane_orderings() {
    let (config, data) = quick();
    let result = clear_folds(&data, &config, false, |_, _| {});
    // Matched-cluster models should not be far below wrong-cluster models
    // even at this toy scale (clusters of 1-2 subjects make the strict
    // ordering noisy; paper-scale ordering is asserted by the table1
    // harness's shape checks).
    assert!(
        result.without_ft.accuracy_mean + 8.0 > result.rt.accuracy_mean,
        "matched {} far below wrong-cluster {}",
        result.without_ft.accuracy_mean,
        result.rt.accuracy_mean
    );
    // Scores live in sane ranges.
    for f in &result.folds {
        assert!(f.without_ft.accuracy >= 0.0 && f.without_ft.accuracy <= 1.0);
        assert!(f.with_ft.accuracy >= 0.0 && f.with_ft.accuracy <= 1.0);
    }
    // Cold-start assignment is far better than the 25 % chance level.
    assert!(
        result.assignment_accuracy >= 0.5,
        "assignment accuracy {}",
        result.assignment_accuracy
    );
}

#[test]
fn general_model_runs_and_reports_folds() {
    let (config, data) = quick();
    let agg = general_model(&data, &config);
    assert_eq!(agg.folds, config.general_subjects);
    assert!(
        agg.accuracy_mean > 30.0,
        "degenerate accuracy {}",
        agg.accuracy_mean
    );
}

#[test]
fn edge_deployment_round_trip_from_cloud_checkpoint() {
    let (config, data) = quick();
    let subjects = data.subject_ids();
    let (&vx, initial) = subjects.split_last().unwrap();
    let cloud = CloudTraining::fit(&data, initial, &config);
    let indices = data.indices_of(vx);
    let assigned = cloud.assign_user(&data, &indices[..1]);

    let test_ds = cloud.user_dataset(&data, &indices[1..]);
    let input_shape = [1usize, 123, data.windows()];
    let mut gpu = EdgeDeployment::new(cloud.model(assigned).clone(), Device::Gpu, &input_shape);
    let mut tpu = EdgeDeployment::new(
        cloud.model(assigned).clone(),
        Device::CoralTpu,
        &input_shape,
    );
    let g = gpu.evaluate(&test_ds);
    let t = tpu.evaluate(&test_ds);
    // int8 may tie but should not dramatically beat fp32 on identical data.
    assert!(
        t.accuracy <= g.accuracy + 0.15,
        "tpu {} vs gpu {}",
        t.accuracy,
        g.accuracy
    );
    // The latency model orders devices as in the paper.
    assert!(gpu.test_time_ms() < tpu.test_time_ms());
}

#[test]
fn checkpoints_survive_serialization_across_crates() {
    let (config, data) = quick();
    let subjects = data.subject_ids();
    let cloud = CloudTraining::fit(&data, &subjects, &config);
    let json = cloud.model(0).to_json().expect("serialize");
    let restored = clear::nn::network::Network::from_json(&json).expect("deserialize");
    let ds = cloud.user_dataset(&data, &data.indices_of(subjects[0]));
    let a = clear::nn::train::evaluate(cloud.model(0), &ds);
    let b = clear::nn::train::evaluate(&restored, &ds);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.f1, b.f1);
}
