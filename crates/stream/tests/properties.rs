//! Property suite: arbitrary chunk-size / modality-interleaving schedules
//! into a [`StreamSession`] produce feature columns bit-identical to the
//! batch `FeatureExtractor` over the concatenated signal.

use clear_features::{FeatureExtractor, FeatureMap, WindowConfig};
use clear_sim::{chunk_schedule, Cohort, CohortConfig, Recording, SignalConfig};
use clear_stream::{SessionConfig, StreamSession};
use proptest::prelude::*;

/// A three-recording continuous stream from the small simulated cohort.
fn stream_signal(seed: u64) -> (SignalConfig, Vec<f32>, Vec<f32>, Vec<f32>, Recording) {
    let config = CohortConfig::small(seed);
    let cohort = Cohort::generate(&config);
    let recs = &cohort.recordings()[..3];
    let mut bvp = Vec::new();
    let mut gsr = Vec::new();
    let mut skt = Vec::new();
    for r in recs {
        bvp.extend_from_slice(&r.bvp);
        gsr.extend_from_slice(&r.gsr);
        skt.extend_from_slice(&r.skt);
    }
    (config.signal, bvp, gsr, skt, recs[0].clone())
}

/// Batch reference: maps chopped from the extractor run over the whole
/// stream at once.
fn batch_maps(
    signal: SignalConfig,
    window: WindowConfig,
    wpm: usize,
    bvp: &[f32],
    gsr: &[f32],
    skt: &[f32],
    template: &Recording,
) -> Vec<FeatureMap> {
    let rec = Recording {
        bvp: bvp.to_vec(),
        gsr: gsr.to_vec(),
        skt: skt.to_vec(),
        ..template.clone()
    };
    let big = FeatureExtractor::new(signal, window).feature_map(&rec);
    let mut maps = Vec::new();
    let mut w = 0;
    while w + wpm <= big.window_count() {
        let columns: Vec<Vec<f32>> = (w..w + wpm)
            .map(|k| (0..big.feature_count()).map(|f| big.get(f, k)).collect())
            .collect();
        maps.push(FeatureMap::from_columns(&columns));
        w += wpm;
    }
    maps
}

fn assert_maps_bit_identical(live: &[FeatureMap], batch: &[FeatureMap]) {
    assert_eq!(live.len(), batch.len(), "map count diverged");
    for (k, (a, b)) in live.iter().zip(batch).enumerate() {
        assert_eq!(a.window_count(), b.window_count());
        for f in 0..a.feature_count() {
            for w in 0..a.window_count() {
                assert_eq!(
                    a.get(f, w).to_bits(),
                    b.get(f, w).to_bits(),
                    "map {k} feature {f} window {w} diverged"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Any seeded jittered chunk schedule — modalities delivered in
    /// irregular, independently drawn chunks — reassembles into maps
    /// bit-identical to the batch path.
    #[test]
    fn any_chunk_schedule_is_bit_identical_to_batch(
        cohort_seed in 0u64..1000,
        schedule_seed in proptest::num::u64::ANY,
        min_secs in 0.05f32..1.0,
        span in 0.1f32..6.0,
        wpm in 1usize..5,
    ) {
        let (signal, bvp, gsr, skt, template) = stream_signal(cohort_seed);
        let window = WindowConfig::default();
        let batch = batch_maps(signal, window, wpm, &bvp, &gsr, &skt, &template);

        // A schedule covering the whole 3-recording stream.
        let total = SignalConfig {
            stimulus_secs: signal.stimulus_secs * 3.0,
            ..signal
        };
        let plan = chunk_schedule(&total, min_secs, min_secs + span, schedule_seed);
        prop_assert_eq!(plan.iter().map(|c| c.bvp).sum::<usize>(), bvp.len());
        prop_assert_eq!(plan.iter().map(|c| c.gsr).sum::<usize>(), gsr.len());
        prop_assert_eq!(plan.iter().map(|c| c.skt).sum::<usize>(), skt.len());

        let mut session =
            StreamSession::new("prop", SessionConfig::new(signal, window, wpm)).unwrap();
        let (mut ob, mut og, mut os) = (0usize, 0usize, 0usize);
        let mut live = Vec::new();
        for chunk in &plan {
            session
                .ingest(
                    &bvp[ob..ob + chunk.bvp],
                    &gsr[og..og + chunk.gsr],
                    &skt[os..os + chunk.skt],
                )
                .unwrap();
            ob += chunk.bvp;
            og += chunk.gsr;
            os += chunk.skt;
            live.extend(session.take_ready());
        }
        assert_maps_bit_identical(&live, &batch);

        // The session's buffers stayed bounded the whole way: resident
        // bytes cannot exceed one window + hop of samples plus the
        // largest chunk plus one in-flight map (ready maps were drained
        // every push).
        let span_samples = ((window.window_secs + window.step_secs)
            * (signal.fs_bvp + signal.fs_gsr + signal.fs_skt))
            .ceil() as usize;
        let max_chunk = plan
            .iter()
            .map(|c| c.bvp + c.gsr + c.skt)
            .max()
            .unwrap_or(0);
        let bound = (span_samples + max_chunk + 3) * 4
            + 2 * wpm * clear_features::FEATURE_COUNT * 4;
        prop_assert!(
            session.resident_bytes() <= bound,
            "resident {} exceeds bound {}",
            session.resident_bytes(),
            bound
        );
    }

    /// Degenerate schedules — one-sample chunks, one modality at a time —
    /// still match the batch path bit-for-bit.
    #[test]
    fn single_modality_interleavings_are_bit_identical(
        cohort_seed in 0u64..1000,
        order in 0usize..6,
    ) {
        let (signal, bvp, gsr, skt, template) = stream_signal(cohort_seed);
        let window = WindowConfig::default();
        let wpm = 4;
        let batch = batch_maps(signal, window, wpm, &bvp, &gsr, &skt, &template);

        // Deliver each modality completely before the next, in one of the
        // six possible orders: the extreme of modality skew.
        let mut session =
            StreamSession::new("prop", SessionConfig::new(signal, window, wpm)).unwrap();
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let mut live = Vec::new();
        for &m in &perms[order] {
            let (b, g, s): (&[f32], &[f32], &[f32]) = match m {
                0 => (&bvp, &[], &[]),
                1 => (&[], &gsr, &[]),
                _ => (&[], &[], &skt),
            };
            session.ingest(b, g, s).unwrap();
            live.extend(session.take_ready());
        }
        assert_maps_bit_identical(&live, &batch);
    }
}
