//! Property-based invariants for the bounded cache and the delta store:
//!
//! 1. weight-delta extraction survives serialization and rehydrates
//!    bit-identically for *arbitrary* bit-level weight edits, and
//! 2. no operation sequence can make a capacity-1 cache serve different
//!    predictions than an effectively unbounded one or a sequential
//!    single-tenant deployment — eviction pressure is invisible.

mod common;

use clear_core::deployment::{ClearDeployment, Onboarding, Prediction};
use clear_nn::delta::WeightDelta;
use clear_nn::network::cnn_lstm_compact;
use clear_serve::{EngineConfig, ServeEngine};
use common::{fixture, labeled_of, lenient, maps_of, outcome_key, Fixture};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Any set of bit-level edits — including ones producing NaN or
    /// infinity — round-trips through extract → JSON → parse → apply
    /// with every weight bit preserved.
    #[test]
    fn delta_round_trip_is_bit_exact_for_arbitrary_edits(
        seed in 0u64..1000,
        edits in prop::collection::vec((0usize..10_000, any::<u32>()), 1..32),
    ) {
        let base = cnn_lstm_compact(16, 4, 2, seed);
        let mut flat = base.parameters_flat();
        let n = flat.len();
        for &(idx, bump) in &edits {
            let i = idx % n;
            flat[i] = f32::from_bits(flat[i].to_bits().wrapping_add(bump));
        }
        let mut tuned = base.clone();
        tuned.set_parameters_flat(&flat);

        let delta = WeightDelta::between(&base, &tuned).unwrap();
        let wire = delta.to_json().unwrap();
        let restored = WeightDelta::from_json(&wire).unwrap().apply(&base).unwrap();

        let want: Vec<u32> = tuned.parameters_flat().iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = restored.parameters_flat().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(want, got);
        prop_assert!(delta.len() <= edits.len());
    }
}

/// One tenant operation over a three-user population.
#[derive(Debug, Clone, Copy)]
enum PropOp {
    Onboard(u8),
    Predict(u8, u8),
    Personalize(u8),
    Offboard(u8),
}

/// Observable outcome, with errors flattened to display strings (the
/// engine's `Deploy` variant renders identically to `DeployError`) and
/// personalization outcomes flattened to their NaN-safe bit key.
#[derive(Debug, PartialEq)]
enum PropResult {
    Onboard(Result<Onboarding, String>),
    Predict(Result<Vec<Prediction>, String>),
    Personalize(Result<(bool, bool, u32, u32), String>),
    Offboard(bool),
}

fn prop_op() -> impl Strategy<Value = PropOp> {
    prop_oneof![
        2 => (0u8..3).prop_map(PropOp::Onboard),
        5 => ((0u8..3), (0u8..3)).prop_map(|(u, k)| PropOp::Predict(u, k)),
        2 => (0u8..3).prop_map(PropOp::Personalize),
        1 => (0u8..3).prop_map(PropOp::Offboard),
    ]
}

fn user_of(op: PropOp) -> u8 {
    match op {
        PropOp::Onboard(u)
        | PropOp::Predict(u, _)
        | PropOp::Personalize(u)
        | PropOp::Offboard(u) => u,
    }
}

fn apply_engine(f: &Fixture, engine: &ServeEngine, op: PropOp) -> PropResult {
    let user = format!("u-{}", user_of(op));
    match op {
        PropOp::Onboard(u) => PropResult::Onboard(
            engine
                .onboard(&user, &maps_of(f, u as usize, 0, 2))
                .map_err(|e| e.to_string()),
        ),
        PropOp::Predict(u, k) => PropResult::Predict(
            engine
                .predict(
                    &user,
                    &maps_of(f, u as usize, 3 + k as usize, 5 + k as usize),
                )
                .map_err(|e| e.to_string()),
        ),
        PropOp::Personalize(u) => PropResult::Personalize(
            engine
                .personalize(&user, &labeled_of(f, u as usize, 2, 4), &f.config.finetune)
                .map(|o| outcome_key(&o))
                .map_err(|e| e.to_string()),
        ),
        PropOp::Offboard(_) => PropResult::Offboard(
            engine
                .offboard(&user)
                .expect("non-durable offboard cannot fail"),
        ),
    }
}

fn apply_dep(f: &Fixture, dep: &mut ClearDeployment, op: PropOp) -> PropResult {
    let user = format!("u-{}", user_of(op));
    match op {
        PropOp::Onboard(u) => PropResult::Onboard(
            dep.onboard(&user, &maps_of(f, u as usize, 0, 2))
                .map_err(|e| e.to_string()),
        ),
        PropOp::Predict(u, k) => PropResult::Predict(
            dep.predict_batch(
                &user,
                &maps_of(f, u as usize, 3 + k as usize, 5 + k as usize),
            )
            .map_err(|e| e.to_string()),
        ),
        PropOp::Personalize(u) => PropResult::Personalize(
            dep.personalize(&user, &labeled_of(f, u as usize, 2, 4), &f.config.finetune)
                .map(|o| outcome_key(&o))
                .map_err(|e| e.to_string()),
        ),
        PropOp::Offboard(_) => PropResult::Offboard(dep.offboard(&user)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// A capacity-1 cache under maximal eviction pressure, an effectively
    /// unbounded cache and a cache-free sequential deployment agree on
    /// every operation of every random sequence, and on the terminal
    /// per-user state.
    #[test]
    fn cache_pressure_never_changes_behavior(ops in prop::collection::vec(prop_op(), 1..14)) {
        let f = fixture();
        let tiny = ServeEngine::with_policy(
            f.bundle.clone(),
            lenient(),
            EngineConfig { shards: 2, cache_capacity: 1, max_queue_depth: 64, ..EngineConfig::default() },
        );
        let oracle = ServeEngine::with_policy(
            f.bundle.clone(),
            lenient(),
            EngineConfig { shards: 1, cache_capacity: 1_000_000, max_queue_depth: 64, ..EngineConfig::default() },
        );
        let mut dep = ClearDeployment::with_policy(f.bundle.clone(), lenient());

        for (step, &op) in ops.iter().enumerate() {
            let a = apply_engine(f, &tiny, op);
            let b = apply_engine(f, &oracle, op);
            let c = apply_dep(f, &mut dep, op);
            prop_assert_eq!(&a, &b, "step {} ({:?}): tiny vs oracle", step, op);
            prop_assert_eq!(&a, &c, "step {} ({:?}): tiny vs sequential", step, op);
        }

        for u in 0..3u8 {
            let user = format!("u-{u}");
            prop_assert_eq!(tiny.cluster_of(&user).ok(), oracle.cluster_of(&user).ok());
            prop_assert_eq!(tiny.cluster_of(&user).ok(), dep.cluster_of(&user).ok());
            prop_assert_eq!(tiny.is_personalized(&user), dep.is_personalized(&user));
            prop_assert_eq!(tiny.quarantined_count(&user), dep.quarantined_count(&user));
        }
        prop_assert!(tiny.cache_stats().resident <= 1);
    }
}
