//! Softmax cross-entropy loss.

use crate::tensor::Tensor;

/// Numerically stable softmax of a logit vector.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "softmax of empty logits");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|v| v / sum).collect()
}

/// Softmax cross-entropy for a single sample.
///
/// Returns `(loss, grad_logits)` where the gradient is `softmax - onehot`.
///
/// # Panics
///
/// Panics if `logits` is not rank 1 or `target` is out of range.
pub fn cross_entropy(logits: &Tensor, target: usize) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 1, "cross entropy expects rank-1 logits");
    let n = logits.numel();
    assert!(target < n, "target class {target} out of range (n={n})");
    let probs = softmax(logits.as_slice());
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    (loss, Tensor::from_vec(&[n], grad))
}

/// Predicted class of a logit vector (argmax).
///
/// # Panics
///
/// Panics if `logits` is not rank 1.
pub fn predict_class(logits: &Tensor) -> usize {
    logits.argmax()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        let extreme = softmax(&[-1e20, 1e20]);
        assert!(extreme.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let good = Tensor::from_vec(&[2], vec![10.0, -10.0]);
        let (l_good, _) = cross_entropy(&good, 0);
        let (l_bad, _) = cross_entropy(&good, 1);
        assert!(l_good < 1e-3);
        assert!(l_bad > 5.0);
    }

    #[test]
    fn gradient_is_probs_minus_onehot() {
        let logits = Tensor::from_vec(&[3], vec![0.0, 0.0, 0.0]);
        let (_, g) = cross_entropy(&logits, 1);
        let third = 1.0 / 3.0;
        assert!((g.at1(0) - third).abs() < 1e-6);
        assert!((g.at1(1) - (third - 1.0)).abs() < 1e-6);
        assert!((g.at1(2) - third).abs() < 1e-6);
        // Gradients over classes sum to zero.
        assert!(g.as_slice().iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn finite_difference_check() {
        // d(loss)/d(logit_j) must match numerical differentiation.
        let base = vec![0.3f32, -0.7, 1.2];
        let (_, g) = cross_entropy(&Tensor::from_vec(&[3], base.clone()), 2);
        let eps = 1e-3;
        for j in 0..3 {
            let mut plus = base.clone();
            plus[j] += eps;
            let mut minus = base.clone();
            minus[j] -= eps;
            let (lp, _) = cross_entropy(&Tensor::from_vec(&[3], plus), 2);
            let (lm, _) = cross_entropy(&Tensor::from_vec(&[3], minus), 2);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - g.at1(j)).abs() < 1e-3,
                "logit {j}: analytic {} vs numeric {num}",
                g.at1(j)
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let _ = cross_entropy(&Tensor::zeros(&[2]), 2);
    }
}
