//! Bounded LRU cache of resident personalized networks.
//!
//! The engine's source of truth for a personalized user is the sparse
//! [`clear_nn::delta::WeightDelta`] stored in their shard; this cache
//! only holds *hydrated* forks (full `Network`s rebuilt from base ⊕
//! delta) so hot users skip the rebuild. Entries are keyed by user and
//! stamped with the tenant's personalization generation: a cached fork
//! from a previous generation (re-personalized or re-onboarded user) is
//! treated as a miss and dropped, so the cache can never serve stale
//! weights. Eviction is least-recently-used and semantically invisible —
//! the next access rebuilds the identical network from the delta.

use clear_nn::network::Network;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Entry {
    net: Arc<Network>,
    generation: u64,
    last_used: u64,
}

struct Inner {
    tick: u64,
    entries: HashMap<String, Entry>,
}

/// A thread-safe LRU cache with a hard capacity (≥ 1).
pub(crate) struct ModelCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ModelCache {
    /// Creates a cache holding at most `capacity.max(1)` networks.
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                tick: 0,
                entries: HashMap::new(),
            }),
        }
    }

    /// Returns the user's resident fork if it matches `generation`,
    /// refreshing its recency. A stale-generation entry is dropped and
    /// reported as a miss.
    pub(crate) fn get(&self, user: &str, generation: u64) -> Option<Arc<Network>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(user) {
            Some(entry) if entry.generation == generation => {
                entry.last_used = tick;
                return Some(Arc::clone(&entry.net));
            }
            Some(_) => {}
            None => return None,
        }
        inner.entries.remove(user);
        None
    }

    /// Inserts (or replaces) the user's fork and evicts least-recently
    /// used entries until the capacity holds. Returns how many entries
    /// were evicted.
    pub(crate) fn insert(&self, user: &str, generation: u64, net: Arc<Network>) -> u64 {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            user.to_string(),
            Entry {
                net,
                generation,
                last_used: tick,
            },
        );
        let mut evicted = 0;
        while inner.entries.len() > self.capacity {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over-capacity cache is non-empty");
            inner.entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    /// Drops the user's resident fork, if any.
    pub(crate) fn remove(&self, user: &str) {
        self.inner.lock().entries.remove(user);
    }

    /// Resident forks.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// The capacity bound.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_nn::network::cnn_lstm_compact;

    fn net(seed: u64) -> Arc<Network> {
        Arc::new(cnn_lstm_compact(16, 4, 2, seed))
    }

    #[test]
    fn capacity_floor_is_one() {
        let cache = ModelCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert("a", 0, net(1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.insert("b", 0, net(2)), 1, "a must be evicted");
        assert!(cache.get("a", 0).is_none());
        assert!(cache.get("b", 0).is_some());
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache = ModelCache::new(2);
        cache.insert("a", 0, net(1));
        cache.insert("b", 0, net(2));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get("a", 0).is_some());
        assert_eq!(cache.insert("c", 0, net(3)), 1);
        assert!(cache.get("a", 0).is_some());
        assert!(cache.get("b", 0).is_none());
        assert!(cache.get("c", 0).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn stale_generation_is_a_miss_and_drops_the_entry() {
        let cache = ModelCache::new(4);
        cache.insert("a", 0, net(1));
        assert!(cache.get("a", 1).is_none(), "old generation must not serve");
        assert_eq!(cache.len(), 0, "stale entry must be dropped");
        // The fresh generation re-inserts cleanly.
        cache.insert("a", 1, net(4));
        assert!(cache.get("a", 1).is_some());
    }

    #[test]
    fn remove_and_replace() {
        let cache = ModelCache::new(4);
        cache.insert("a", 0, net(1));
        cache.remove("a");
        assert!(cache.get("a", 0).is_none());
        cache.insert("a", 0, net(1));
        assert_eq!(cache.insert("a", 1, net(2)), 0, "replacement never evicts");
        assert!(cache.get("a", 1).is_some());
        // A stale-generation probe both misses and invalidates.
        assert!(cache.get("a", 0).is_none());
        assert_eq!(cache.len(), 0);
    }
}
