//! Background re-clustering: recent users → candidate cluster models.
//!
//! The refitter is the only place in the lifecycle layer where training
//! happens, and it never touches live serving: it assigns a window of
//! recently observed users through the *live* bundle's cold-start
//! geometry, retrains each cluster's model from the cluster's immutable
//! base checkpoint on those users' (labeled) recent data, and applies
//! the same validation-holdout rule the personalization stage uses — a
//! candidate that scores worse than its base on held-out recent data is
//! rejected before anyone shadow-evaluates it. What survives is a
//! [`CandidateGeneration`]: per-cluster checkpoints plus the accuracy
//! evidence, sealable as a checksummed artifact for hand-off to the
//! rollout controller (possibly on another machine, possibly after a
//! crash).

use clear_core::dataset::PreparedCohort;
use clear_core::deployment::ClearBundle;
use clear_core::serving;
use clear_durable::envelope;
use clear_durable::DurableError;
use clear_nn::network::Network;
use clear_nn::train::{self, TrainConfig};
use clear_sim::SubjectId;
use std::collections::HashMap;
use std::sync::Arc;

/// Envelope kind tag of sealed candidate generations.
const KIND: &str = "generation";

/// Hyper-parameters of a background refit round.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RefitConfig {
    /// Training hyper-parameters of candidate models (typically the
    /// deployment's cloud-training config, fewer epochs).
    pub train: TrainConfig,
    /// Fraction of each cluster's recent data held out to judge the
    /// candidate against its base (the personalization-holdout rule at
    /// cluster scale).
    pub val_fraction: f32,
    /// Clusters with fewer recent subjects than this keep their base
    /// model unchallenged.
    pub min_members: usize,
}

impl Default for RefitConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            val_fraction: 0.25,
            min_members: 1,
        }
    }
}

/// One cluster's refit outcome: the evidence always, the checkpoint only
/// when it survived the holdout rule.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ClusterCandidate {
    /// Cluster index in the live bundle.
    pub cluster: usize,
    /// Recent subjects assigned to this cluster.
    pub members: usize,
    /// Base model's accuracy on the held-out recent data.
    pub base_accuracy: f32,
    /// Candidate's accuracy on the same held-out data.
    pub candidate_accuracy: f32,
    /// The retrained checkpoint; `None` when the cluster was skipped
    /// (too few members) or the candidate lost the holdout comparison.
    pub model: Option<Network>,
}

/// A full candidate generation: one [`ClusterCandidate`] per cluster of
/// the bundle it was refit against.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CandidateGeneration {
    /// Caller-chosen round stamp (diagnostics; the engine assigns the
    /// real generation number at adoption).
    pub round: u64,
    /// Per-cluster outcomes, indexed by cluster.
    pub candidates: Vec<ClusterCandidate>,
}

impl CandidateGeneration {
    /// The surviving candidates in the shape
    /// [`clear_serve::ServeEngine::predict_shadow`] consumes.
    pub fn accepted(&self) -> HashMap<usize, Arc<Network>> {
        self.candidates
            .iter()
            .filter_map(|c| c.model.as_ref().map(|m| (c.cluster, Arc::new(m.clone()))))
            .collect()
    }

    /// Clusters with a surviving candidate, ascending.
    pub fn accepted_clusters(&self) -> Vec<usize> {
        self.candidates
            .iter()
            .filter(|c| c.model.is_some())
            .map(|c| c.cluster)
            .collect()
    }

    /// Seals this generation as a checksummed artifact (kind
    /// `generation`), suitable for durable storage or shipping to the
    /// machine running the rollout.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Io`] when serialization fails.
    pub fn seal(&self) -> Result<String, DurableError> {
        let json = serde_json::to_string(self).map_err(|e| DurableError::Io(e.to_string()))?;
        Ok(envelope::seal_str(KIND, &json))
    }

    /// Opens a sealed candidate generation, verifying the envelope.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::CorruptArtifact`] when the artifact fails
    /// envelope verification or does not parse.
    pub fn open(artifact: &str) -> Result<Self, DurableError> {
        let payload = envelope::open_str(KIND, artifact)?;
        serde_json::from_str(payload)
            .map_err(|e| DurableError::corrupt(KIND, format!("generation does not parse: {e}")))
    }
}

/// Background re-clustering of recent users into candidate models.
#[derive(Debug, Clone)]
pub struct Refitter {
    config: RefitConfig,
}

impl Refitter {
    /// A refitter with the given hyper-parameters.
    pub fn new(config: RefitConfig) -> Self {
        Self { config }
    }

    /// Runs one refit round: assigns every subject of `recent` through
    /// the live bundle's cold-start geometry, then per cluster retrains
    /// from the base checkpoint on the members' recent data and keeps
    /// the candidate only if it beats (or ties) the base on held-out
    /// data. Live serving is untouched — the bundle is read-only here.
    pub fn refit(
        &self,
        bundle: &ClearBundle,
        recent: &PreparedCohort,
        round: u64,
    ) -> CandidateGeneration {
        let _span = clear_obs::span(clear_obs::Stage::LifecycleRefit);
        clear_obs::counter_add(clear_obs::counters::LIFECYCLE_REFITS, 1);

        // Cold-start assignment of the recent population, exactly as the
        // serving path would admit them.
        let mut members: Vec<Vec<SubjectId>> = vec![Vec::new(); bundle.models.len()];
        for subject in recent.subject_ids() {
            let indices = recent.indices_of(subject);
            let maps: Vec<_> = indices.iter().map(|&i| recent.maps()[i].clone()).collect();
            let (cluster, _) = serving::assign_cluster(bundle, &maps);
            if let Some(slot) = members.get_mut(cluster) {
                slot.push(subject);
            }
        }

        let candidates = members
            .iter()
            .enumerate()
            .map(|(cluster, subjects)| self.refit_cluster(bundle, recent, cluster, subjects))
            .collect();
        CandidateGeneration { round, candidates }
    }

    fn refit_cluster(
        &self,
        bundle: &ClearBundle,
        recent: &PreparedCohort,
        cluster: usize,
        subjects: &[SubjectId],
    ) -> ClusterCandidate {
        let skipped = ClusterCandidate {
            cluster,
            members: subjects.len(),
            base_accuracy: 0.0,
            candidate_accuracy: 0.0,
            model: None,
        };
        if subjects.len() < self.config.min_members.max(1) {
            return skipped;
        }
        let full = recent.corrected_dataset_for_subjects(subjects, &bundle.clf_normalizer);
        if full.is_empty() {
            return skipped;
        }
        let base = &bundle.models[cluster];
        let mut candidate = base.clone();
        // Hold out recent data for the candidate-vs-base comparison; when
        // the recent window is too small to split, compare on the full
        // set (better than adopting blind).
        let (val, train_set) = full.split_stratified(self.config.val_fraction, self.config.train.seed);
        let (train_set, holdout) = if val.is_empty() || train_set.is_empty() {
            (full.clone(), full.clone())
        } else {
            (train_set, val)
        };
        train::train(&mut candidate, &train_set, None, &self.config.train);
        let base_accuracy = train::evaluate(base, &holdout).accuracy;
        let candidate_accuracy = train::evaluate(&candidate, &holdout).accuracy;
        // The personalization-holdout rule at cluster scale: never ship a
        // candidate that measures worse than what users already have.
        let model = (candidate_accuracy + 1e-6 >= base_accuracy).then_some(candidate);
        ClusterCandidate {
            cluster,
            members: subjects.len(),
            base_accuracy,
            candidate_accuracy,
            model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_generation() -> CandidateGeneration {
        CandidateGeneration {
            round: 3,
            candidates: vec![
                ClusterCandidate {
                    cluster: 0,
                    members: 2,
                    base_accuracy: 0.5,
                    candidate_accuracy: 0.75,
                    model: Some(clear_nn::network::cnn_lstm_compact(4, 5, 2, 7)),
                },
                ClusterCandidate {
                    cluster: 1,
                    members: 0,
                    base_accuracy: 0.0,
                    candidate_accuracy: 0.0,
                    model: None,
                },
            ],
        }
    }

    #[test]
    fn seal_open_round_trip() {
        let generation = sample_generation();
        let sealed = generation.seal().unwrap();
        assert!(envelope::is_sealed(sealed.as_bytes()));
        let opened = CandidateGeneration::open(&sealed).unwrap();
        assert_eq!(opened.round, 3);
        assert_eq!(opened.candidates.len(), 2);
        assert_eq!(opened.accepted_clusters(), vec![0]);
        let a = generation.candidates[0].model.as_ref().unwrap();
        let b = opened.candidates[0].model.as_ref().unwrap();
        assert_eq!(a.parameters_flat(), b.parameters_flat());
    }

    #[test]
    fn tampered_artifact_is_rejected() {
        let sealed = sample_generation().seal().unwrap();
        let tampered = sealed.replace("0.75", "0.85");
        assert!(CandidateGeneration::open(&tampered).is_err());
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let other = envelope::seal_str("snapshot", "{}");
        assert!(CandidateGeneration::open(&other).is_err());
    }

    #[test]
    fn accepted_map_only_contains_surviving_candidates() {
        let accepted = sample_generation().accepted();
        assert_eq!(accepted.len(), 1);
        assert!(accepted.contains_key(&0));
    }
}
