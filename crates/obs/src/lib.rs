//! # clear-obs — observability for the CLEAR pipeline
//!
//! A zero-heavy-dependency metrics subsystem: a thread-safe [`Registry`]
//! of counters, gauges and fixed-bucket latency histograms; lightweight
//! timing [`span`]s instrumenting every pipeline stage; and the serving
//! [`counters`] the deployment layers increment. Snapshots serialize to
//! JSON (`bench_exec` exports them as `BENCH_obs.json`).
//!
//! ## Design contract
//!
//! * **Near-free when off.** Instrumentation hooks are compiled in
//!   unconditionally, but with no registry installed every hook is one
//!   relaxed atomic load and an early return — no clock reads, no locks,
//!   no allocation. Hot paths (per-window biquads, per-sample forward
//!   passes) stay hot.
//! * **Observation never perturbs computation.** Metrics are written, not
//!   read, by instrumented code, so results are bit-identical with and
//!   without a registry installed — including the parallel-LOSO
//!   determinism contract (`tests/determinism.rs` runs the 2/4/8-thread
//!   sweep with instrumentation enabled).
//! * **The clock is injectable.** Production registries read a monotonic
//!   [`clock::MonotonicClock`]; tests inject a [`clock::FakeClock`] whose
//!   reads advance deterministically, making histogram snapshots
//!   byte-stable for a fixed sequence of operations.
//!
//! ## Usage
//!
//! ```
//! use clear_obs::{self as obs, Registry, Stage};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! obs::install(Arc::clone(&registry));
//! {
//!     let _span = obs::span(Stage::ClusterAssign);
//!     obs::counter_add(obs::counters::PREDICTIONS, 1);
//! } // span records its latency on drop
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["serve.predictions"], 1);
//! assert_eq!(snap.histograms["stage.cluster.assign"].count, 1);
//! obs::uninstall();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod registry;
pub mod stage;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, LATENCY_BOUNDS_NS,
    SIZE_BOUNDS,
};
pub use stage::Stage;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Well-known counter names wired through the serving layers. Using the
/// constants (rather than ad-hoc strings) keeps snapshots, dashboards and
/// tests in agreement.
pub mod counters {
    /// Served (non-abstained) predictions.
    pub const PREDICTIONS: &str = "serve.predictions";
    /// Post-inference abstentions (low quality or confidence).
    pub const ABSTENTIONS: &str = "serve.abstentions";
    /// Windows quarantined before inference (no usable modality).
    pub const QUARANTINES: &str = "serve.quarantines";
    /// Modality blocks imputed from cluster statistics.
    pub const IMPUTED_MODALITIES: &str = "serve.imputed_modalities";
    /// `predict_batch` invocations.
    pub const BATCHES: &str = "serve.batches";
    /// Windows served through `predict_batch`.
    pub const BATCH_WINDOWS: &str = "serve.batch_windows";
    /// Onboardings that assigned a cluster.
    pub const ONBOARD_ASSIGNED: &str = "serve.onboard_assigned";
    /// Onboardings deferred by the quality guardrail.
    pub const ONBOARD_DEFERRED: &str = "serve.onboard_deferred";
    /// Personalizations adopted (fine-tuned checkpoint kept).
    pub const PERSONALIZE_ADOPTED: &str = "serve.personalize_adopted";
    /// Personalizations rolled back to the cluster checkpoint.
    pub const PERSONALIZE_ROLLED_BACK: &str = "serve.personalize_rolled_back";
    /// Inferences served by a fallback checkpoint after degradation.
    pub const FALLBACK_SERVES: &str = "serve.fallbacks";
    /// Individual faults absorbed by retry.
    pub const FAULTS_ABSORBED: &str = "serve.faults_absorbed";
    /// Requests lost after exhausting the retry budget.
    pub const UNAVAILABLE: &str = "serve.unavailable";
    /// Workspace rebinds (layer-structure changes; steady state is 0/call).
    pub const WORKSPACE_REBINDS: &str = "nn.workspace_rebinds";
    /// Training epochs completed.
    pub const TRAIN_EPOCHS: &str = "nn.train_epochs";
    /// Personalized-model cache hits (fork already resident).
    pub const CACHE_HITS: &str = "serve.cache_hits";
    /// Personalized-model cache misses (fork evicted or never cached).
    pub const CACHE_MISSES: &str = "serve.cache_misses";
    /// Personalized forks evicted to serialized-delta form.
    pub const CACHE_EVICTIONS: &str = "serve.cache_evictions";
    /// Personalized forks rebuilt from a weight delta on access.
    pub const CACHE_REHYDRATIONS: &str = "serve.cache_rehydrations";
    /// Requests rejected by per-shard admission control.
    pub const OVERLOADED: &str = "serve.overloaded";
    /// Windows answered by the int8 fast tier (no fallback needed).
    pub const SERVE_TIER_INT8: &str = "serve.tier.int8";
    /// Fast-tier windows re-served on the exact f32 backend because the
    /// int8 result would have abstained.
    pub const SERVE_TIER_F32_FALLBACK: &str = "serve.tier.f32_fallback";
    /// Write-ahead-log append batches committed.
    pub const DURABLE_WAL_APPENDS: &str = "durable.wal_appends";
    /// Bytes appended to the write-ahead log.
    pub const DURABLE_WAL_BYTES: &str = "durable.wal_bytes";
    /// Storage sync batches issued by the write-ahead log (one per
    /// logical operation, however many records it carries).
    pub const DURABLE_FSYNC_BATCHES: &str = "durable.fsync_batches";
    /// Torn WAL tails truncated on open (expected crash damage).
    pub const DURABLE_WAL_TRUNCATIONS: &str = "durable.wal_truncations";
    /// Snapshots sealed and atomically published.
    pub const DURABLE_SNAPSHOTS: &str = "durable.snapshots";
    /// Automatic snapshot attempts that failed (the WAL keeps growing;
    /// committed state is unaffected).
    pub const DURABLE_SNAPSHOT_FAILURES: &str = "durable.snapshot_failures";
    /// WAL records replayed during recovery.
    pub const DURABLE_RECOVERED_OPS: &str = "durable.recovered_ops";
    /// Artifacts (WAL frames, snapshots, bundles) that failed
    /// verification: checksum mismatch, bad envelope, unparseable
    /// payload, non-finite weights.
    pub const DURABLE_CORRUPTION_EVENTS: &str = "durable.corruption_events";
    /// WAL records shipped from a partition leader to its follower
    /// (counted per record, re-ships included).
    pub const CLUSTER_FRAMES_SHIPPED: &str = "cluster.frames_shipped";
    /// WAL records acknowledged as applied by a follower.
    pub const CLUSTER_FRAMES_ACKED: &str = "cluster.frames_acked";
    /// Shipping attempts retried after loss, reordering or timeout.
    pub const CLUSTER_FRAMES_RETRIED: &str = "cluster.frames_retried";
    /// Leader failovers completed (follower promoted).
    pub const CLUSTER_FAILOVERS: &str = "cluster.failovers";
    /// Live partition migrations completed.
    pub const CLUSTER_MIGRATIONS: &str = "cluster.migrations";
    /// Mutations rejected because a partition had no serving leader.
    pub const CLUSTER_PARTITION_UNAVAILABLE: &str = "cluster.partition_unavailable";
    /// Followers latched into quarantine after detecting divergence.
    pub const CLUSTER_FOLLOWER_DIVERGENCE: &str = "cluster.follower_divergence";
    /// Predictions served read-only by a follower while its partition
    /// was leaderless.
    pub const CLUSTER_READONLY_SERVES: &str = "cluster.readonly_serves";
    /// Messages handed to the cluster transport.
    pub const CLUSTER_NET_MESSAGES: &str = "cluster.net_messages";
    /// Messages the simulated network dropped.
    pub const CLUSTER_NET_DROPPED: &str = "cluster.net_dropped";
    /// Messages the simulated network duplicated.
    pub const CLUSTER_NET_DUPLICATED: &str = "cluster.net_duplicated";
    /// Messages the simulated network delayed or reordered.
    pub const CLUSTER_NET_DELAYED: &str = "cluster.net_delayed";
    /// Messages the simulated network reordered ahead of queued traffic.
    pub const CLUSTER_NET_REORDERED: &str = "cluster.net_reordered";
    /// Flushes rejected because fewer live, unlatched followers remained
    /// than the configured write quorum.
    pub const CLUSTER_QUORUM_LOST: &str = "cluster.quorum_lost";
    /// Anti-entropy scrub passes completed (one per partition scrubbed).
    pub const CLUSTER_SCRUBS: &str = "cluster.scrubs";
    /// Stale followers repaired by scrub-triggered snapshot transfer.
    pub const CLUSTER_SCRUB_REPAIRS: &str = "cluster.scrub_repairs";
    /// Followers latched by scrub after a fingerprint or LSN mismatch
    /// that frame replay alone could not have detected.
    pub const CLUSTER_SCRUB_DIVERGENCE: &str = "cluster.scrub_divergence";
    /// Raw signal chunks ingested by streaming sessions.
    pub const STREAM_CHUNKS: &str = "stream.chunks";
    /// Raw samples ingested across all modalities (device rate).
    pub const STREAM_SAMPLES: &str = "stream.samples";
    /// Feature windows completed by streaming sessions.
    pub const STREAM_WINDOWS: &str = "stream.windows";
    /// Full feature maps assembled by streaming sessions and queued for
    /// prediction.
    pub const STREAM_MAPS: &str = "stream.maps";
    /// Streaming sessions opened on a pump.
    pub const STREAM_SESSIONS_OPENED: &str = "stream.sessions_opened";
    /// Streaming sessions closed.
    pub const STREAM_SESSIONS_CLOSED: &str = "stream.sessions_closed";
    /// Pending windows dropped by the `DropOldest` shed policy.
    pub const STREAM_SHED_DROPPED_WINDOWS: &str = "stream.shed.dropped_windows";
    /// Chunks rejected (typed over-budget error) by the `RejectNewest`
    /// shed policy.
    pub const STREAM_SHED_REJECTED_CHUNKS: &str = "stream.shed.rejected_chunks";
    /// Windows skipped by the `DegradeToSparseHop` shed policy (temporal
    /// resolution halved while over budget).
    pub const STREAM_SHED_SPARSE_HOP_WINDOWS: &str = "stream.shed.sparse_hop_windows";
    /// Feature maps re-routed to a new partition leader after a failed
    /// cluster-backed drain (undelivered work carried forward).
    pub const STREAM_CLUSTER_REDELIVERIES: &str = "stream.cluster.redeliveries";
    /// Drift-monitor window samples ingested.
    pub const LIFECYCLE_WINDOWS_OBSERVED: &str = "lifecycle.windows_observed";
    /// Typed drift signals raised by the drift monitor.
    pub const LIFECYCLE_DRIFT_SIGNALS: &str = "lifecycle.drift_signals";
    /// Background refits completed (candidate generations produced).
    pub const LIFECYCLE_REFITS: &str = "lifecycle.refits";
    /// Shadow evaluations completed (candidate dual-predicted against
    /// live traffic).
    pub const LIFECYCLE_SHADOW_EVALS: &str = "lifecycle.shadow_evals";
    /// Windows dual-predicted on the shadow path (candidate-side serves;
    /// kept separate from `serve.*` so shadow traffic never pollutes the
    /// drift monitor's own inputs).
    pub const LIFECYCLE_SHADOW_WINDOWS: &str = "lifecycle.shadow_windows";
    /// Cluster model generations adopted by staged rollout.
    pub const LIFECYCLE_CLUSTERS_ADOPTED: &str = "lifecycle.clusters_adopted";
    /// Cluster model generations rolled back to the prior generation.
    pub const LIFECYCLE_CLUSTERS_ROLLED_BACK: &str = "lifecycle.clusters_rolled_back";
}

/// Gauge name for the worst follower replication lag across partitions,
/// in WAL records (leader `last_lsn` minus follower acked LSN).
pub const CLUSTER_FOLLOWER_LAG_GAUGE: &str = "cluster.follower_lag";

/// Histogram name for `predict_batch` request sizes (bounds
/// [`SIZE_BOUNDS`]).
pub const BATCH_SIZE_HISTOGRAM: &str = "serve.batch_size";

/// Histogram name for sealed snapshot sizes in bytes (bounds
/// [`SIZE_BOUNDS`]).
pub const SNAPSHOT_BYTES_HISTOGRAM: &str = "durable.snapshot_bytes";

static INSTALLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// Installs `registry` as the process-wide metrics sink. Instrumentation
/// hooks across all crates start recording into it immediately; a
/// previously installed registry is replaced (and returned to its other
/// `Arc` holders only).
pub fn install(registry: Arc<Registry>) {
    *REGISTRY.write().unwrap_or_else(PoisonError::into_inner) = Some(registry);
    INSTALLED.store(true, Ordering::Release);
}

/// Removes the installed registry, returning it. Hooks revert to their
/// near-free disabled path.
pub fn uninstall() -> Option<Arc<Registry>> {
    INSTALLED.store(false, Ordering::Release);
    REGISTRY
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
}

/// The installed registry, if any. This is the fast path every hook
/// takes: one relaxed load when disabled.
#[inline]
pub fn installed() -> Option<Arc<Registry>> {
    if !INSTALLED.load(Ordering::Relaxed) {
        return None;
    }
    REGISTRY
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// An RAII timing span: construction reads the clock, drop records the
/// elapsed nanoseconds into the stage's latency histogram. A no-op (no
/// clock reads) when no registry is installed.
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Arc<Registry>, Stage, u64)>,
}

impl SpanGuard {
    /// A span that records nothing (the disabled path).
    pub fn noop() -> Self {
        Self { active: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((registry, stage, start)) = self.active.take() {
            let elapsed = registry.now_ns().saturating_sub(start);
            registry.stage(stage).record(elapsed);
        }
    }
}

/// Opens a timing span over `stage`; the returned guard records the
/// elapsed time when dropped.
#[inline]
pub fn span(stage: Stage) -> SpanGuard {
    match installed() {
        None => SpanGuard::noop(),
        Some(registry) => {
            let start = registry.now_ns();
            SpanGuard {
                active: Some((registry, stage, start)),
            }
        }
    }
}

/// Adds `n` to the named counter (no-op when disabled).
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if let Some(registry) = installed() {
        registry.counter(name).add(n);
    }
}

/// Sets the named gauge (no-op when disabled).
#[inline]
pub fn gauge_set(name: &str, v: i64) {
    if let Some(registry) = installed() {
        registry.gauge(name).set(v);
    }
}

/// Records `v` into the named size histogram (no-op when disabled).
#[inline]
pub fn size_record(name: &str, v: u64) {
    if let Some(registry) = installed() {
        registry.histogram(name, &SIZE_BOUNDS).record(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global registry slot is process-wide state shared by every test
    // in this binary; serialize the tests that touch it.
    static GLOBAL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(&[10, 100, 1_000]);
        // On-boundary values land in their bound's bucket; above-all
        // values land in the overflow slot.
        for v in [0, 10, 11, 100, 1_000, 1_001, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 1, 2]);
        assert_eq!(s.count, 7);
        assert_eq!(s.max, u64::MAX);
        // Quantiles resolve to bucket upper bounds (max for overflow).
        assert_eq!(s.quantile(0.01), 10);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn concurrent_counter_increments_from_scoped_threads() {
        let registry = Registry::new();
        let counter = registry.counter("test.hits");
        let hist = registry.histogram("test.sizes", &SIZE_BOUNDS);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let counter = Arc::clone(&counter);
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        counter.add(1);
                        hist.record((t * 1_000 + i) % 7 + 1);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 8_000);
        let s = hist.snapshot();
        assert_eq!(s.count, 8_000);
        assert_eq!(s.counts.iter().sum::<u64>(), 8_000);
    }

    #[test]
    fn snapshot_is_deterministic_with_fake_clock() {
        let run = || {
            let registry = Registry::with_clock(Box::new(FakeClock::new(250)));
            for _ in 0..5 {
                let start = registry.now_ns();
                let elapsed = registry.now_ns() - start;
                registry.stage(Stage::Predict).record(elapsed);
            }
            registry.counter(counters::PREDICTIONS).add(5);
            registry.gauge("users.active").set(3);
            registry.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // And the JSON is byte-stable, BTreeMap key order included.
        let ja = a.to_json();
        let jb = b.to_json();
        assert_eq!(ja, jb);
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
        assert!(ja.contains("\"serve.predictions\":5"));
        assert!(ja.contains("\"stage.serve.predict\":"));
        // Every fake-clock span took exactly one 250 ns step.
        let h = &a.histograms["stage.serve.predict"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 5 * 250);
        assert_eq!(h.max, 250);
    }

    #[test]
    fn snapshot_json_is_exactly_the_expected_bytes() {
        let registry = Registry::with_clock(Box::new(FakeClock::new(1)));
        registry.counter("a\"b").add(2);
        registry.gauge("g").set(-3);
        registry.histogram("h", &[5, 10]).record(7);
        let snap = registry.snapshot();
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{\"a\\\"b\":2},\"gauges\":{\"g\":-3},\"histograms\":\
             {\"h\":{\"bounds\":[5,10],\"counts\":[0,1,0],\"count\":1,\"sum\":7,\"max\":7}}}"
        );
        let pretty = snap.to_json_pretty();
        assert!(pretty.starts_with("{\n  \"counters\": {\n"));
        assert!(pretty.ends_with("\n}"));
        assert!(pretty.contains("\"g\": -3"));
    }

    #[test]
    fn spans_and_counters_are_noops_without_registry() {
        let _guard = global_lock();
        uninstall();
        assert!(installed().is_none());
        {
            let _span = span(Stage::NnForward);
            counter_add(counters::PREDICTIONS, 1);
            gauge_set("x", 1);
            size_record(BATCH_SIZE_HISTOGRAM, 4);
        }
        // Nothing to observe — the absence of a panic and of a registry
        // is the contract.
        assert!(installed().is_none());
    }

    #[test]
    fn install_routes_spans_into_the_registry() {
        let _guard = global_lock();
        let registry = Arc::new(Registry::with_clock(Box::new(FakeClock::new(100))));
        install(Arc::clone(&registry));
        {
            let _span = span(Stage::FeatureMap);
            counter_add(counters::QUARANTINES, 2);
            size_record(BATCH_SIZE_HISTOGRAM, 32);
        }
        let removed = uninstall().expect("registry was installed");
        assert!(Arc::ptr_eq(&removed, &registry));
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["stage.features.map"].count, 1);
        assert_eq!(snap.counters[counters::QUARANTINES], 2);
        assert_eq!(snap.histograms[BATCH_SIZE_HISTOGRAM].count, 1);
    }

    #[test]
    fn snapshot_omits_quiet_stages() {
        let registry = Registry::with_clock(Box::new(FakeClock::new(1)));
        registry.stage(Stage::EdgeInfer).record(42);
        let snap = registry.snapshot();
        assert!(snap.histograms.contains_key("stage.edge.infer"));
        assert!(!snap.histograms.contains_key("stage.nn.forward"));
    }
}
