//! # clear-durable — crash-consistent persistence for CLEAR serving
//!
//! Everything the serving engine knows about a user — cluster assignment,
//! physiological baseline, quarantine counts, deferred onboarding
//! buffers, personalized weight deltas — is state that took real user
//! interaction (and real fine-tuning compute) to build. This crate makes
//! that state survive the process that built it:
//!
//! * [`frame`] — a checksummed, length-prefixed record codec. A torn
//!   append (process killed mid-write) is detected as an incomplete tail
//!   and truncated; a complete frame whose checksum fails is a typed
//!   corruption error, never garbage records.
//! * [`envelope`] — a versioned, checksummed wrapper for whole-file
//!   artifacts (snapshots, shipped bundles). Opening a corrupted or
//!   truncated artifact yields [`DurableError::CorruptArtifact`], never
//!   silently wrong bytes.
//! * [`storage`] — the injectable byte-level backend: a real filesystem
//!   implementation with atomic tmp-file + rename publication, an
//!   in-memory store for tests, and a fault-injecting wrapper that
//!   simulates a crash at any chosen write boundary (optionally tearing
//!   the final write), so crash-consistency is proven deterministically
//!   instead of by killing processes.
//! * [`wal`] — the write-ahead log of serving operations. Every record
//!   carries a log sequence number; appends are framed, batched and
//!   synced before the in-memory mutation they describe commits.
//! * [`snapshot`] — the periodic full-state checkpoint. A snapshot is
//!   published atomically and records the LSN it covers, after which the
//!   WAL is truncated; recovery seeds state from the snapshot and replays
//!   only records with a later LSN, so replay is exact, not idempotent by
//!   luck.
//!
//! The recovery invariant, enforced by `clear-serve`'s crash-injection
//! suite: a recovered engine is bit-identical — same predictions, same
//! user registry, same personalized weights — to a never-crashed engine
//! that processed the same committed operation prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
pub mod frame;
pub mod snapshot;
pub mod storage;
pub mod wal;

pub use snapshot::{AdoptedClusterRecord, EngineSnapshot, TenantRecord};
pub use storage::{FaultPlan, FaultStorage, FsStorage, MemStorage, ReadFaultPlan, Storage};
pub use wal::{read_records, Wal, WalOp, WalRecord};

/// Errors of the durability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// A storage operation failed (I/O error or injected fault).
    Io(String),
    /// An artifact (WAL frame, snapshot, bundle) failed verification:
    /// bad magic, unsupported version, checksum mismatch, or a payload
    /// that does not parse. The first field names the artifact kind.
    CorruptArtifact {
        /// Which artifact failed (`"wal"`, `"snapshot"`, `"bundle"`, …).
        artifact: &'static str,
        /// What exactly failed verification.
        detail: String,
    },
    /// A previous append failed, so the log's on-disk tail is unknown;
    /// further durable mutations are refused until a snapshot rebuilds a
    /// clean log.
    WalPoisoned,
    /// An append was asked to log zero operations. Acknowledging it would
    /// hand the caller an LSN that was never written, so the request is
    /// rejected before any byte is framed (the log is *not* poisoned —
    /// nothing touched storage).
    EmptyAppend,
}

impl DurableError {
    /// Convenience constructor for corruption errors.
    pub fn corrupt(artifact: &'static str, detail: impl Into<String>) -> Self {
        clear_obs::counter_add(clear_obs::counters::DURABLE_CORRUPTION_EVENTS, 1);
        DurableError::CorruptArtifact {
            artifact,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "storage failure: {e}"),
            DurableError::CorruptArtifact { artifact, detail } => {
                write!(f, "corrupt {artifact} artifact: {detail}")
            }
            DurableError::WalPoisoned => {
                write!(f, "write-ahead log poisoned by an earlier append failure")
            }
            DurableError::EmptyAppend => {
                write!(f, "write-ahead log append carried zero operations")
            }
        }
    }
}

impl std::error::Error for DurableError {}

/// Sizing and cadence knobs of the durability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Logged operations between automatic snapshots (0 disables
    /// automatic snapshots; explicit `snapshot()` calls still work).
    pub snapshot_every_ops: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        Self {
            snapshot_every_ops: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DurableError>();
        let e = DurableError::corrupt("wal", "checksum mismatch");
        assert!(e.to_string().contains("wal"));
        assert!(e.to_string().contains("checksum mismatch"));
        assert!(DurableError::WalPoisoned.to_string().contains("poisoned"));
        assert!(DurableError::Io("disk gone".into())
            .to_string()
            .contains("disk gone"));
    }

    #[test]
    fn default_config_snapshots_periodically() {
        assert!(DurableConfig::default().snapshot_every_ops > 0);
    }
}
