//! Streaming feature extraction for on-device use.
//!
//! The batch extractor ([`crate::FeatureExtractor`]) assumes the whole
//! recording is available; a wearable sees samples arrive continuously.
//! [`StreamingExtractor`] buffers incoming multi-rate samples and emits a
//! 123-feature column whenever a full analysis window (with the configured
//! hop) is available — the incremental construction of the same `123 × W`
//! feature map, bit-identical to the batch path.

use crate::extract::{extract_window, WindowConfig};
use crate::map::FeatureMap;
use clear_sim::SignalConfig;

/// Incremental multi-rate window extractor.
///
/// Push samples as they arrive with [`StreamingExtractor::push`]; each call
/// may complete one analysis window and return its feature column. Columns
/// collected so far can be assembled into a [`FeatureMap`] at any time.
#[derive(Debug, Clone)]
pub struct StreamingExtractor {
    signal: SignalConfig,
    window: WindowConfig,
    bvp: Vec<f32>,
    gsr: Vec<f32>,
    skt: Vec<f32>,
    emitted: usize,
    columns: Vec<Vec<f32>>,
}

impl StreamingExtractor {
    /// Creates a streaming extractor matching a batch
    /// [`FeatureExtractor`](crate::FeatureExtractor) configuration.
    pub fn new(signal: SignalConfig, window: WindowConfig) -> Self {
        Self {
            signal,
            window,
            bvp: Vec::new(),
            gsr: Vec::new(),
            skt: Vec::new(),
            emitted: 0,
            columns: Vec::new(),
        }
    }

    /// Appends newly arrived samples of each modality (any of the slices
    /// may be empty — modalities arrive at different rates). Returns the
    /// feature columns completed by this push (usually zero or one).
    pub fn push(&mut self, bvp: &[f32], gsr: &[f32], skt: &[f32]) -> Vec<Vec<f32>> {
        self.bvp.extend_from_slice(bvp);
        self.gsr.extend_from_slice(gsr);
        self.skt.extend_from_slice(skt);
        let mut out = Vec::new();
        loop {
            let t0 = self.emitted as f32 * self.window.step_secs;
            let t1 = t0 + self.window.window_secs;
            let need_bvp = (t1 * self.signal.fs_bvp).ceil() as usize;
            let need_gsr = (t1 * self.signal.fs_gsr).ceil() as usize;
            let need_skt = (t1 * self.signal.fs_skt).ceil() as usize;
            if self.bvp.len() < need_bvp || self.gsr.len() < need_gsr || self.skt.len() < need_skt {
                break;
            }
            let slice = |x: &[f32], fs: f32| -> Vec<f32> {
                let a = (t0 * fs) as usize;
                let b = ((t1 * fs) as usize).min(x.len());
                x[a.min(b)..b].to_vec()
            };
            let col = extract_window(
                &slice(&self.bvp, self.signal.fs_bvp),
                &slice(&self.gsr, self.signal.fs_gsr),
                &slice(&self.skt, self.signal.fs_skt),
                &self.signal,
            );
            self.columns.push(col.clone());
            self.emitted += 1;
            out.push(col);
        }
        out
    }

    /// Number of completed windows so far.
    pub fn window_count(&self) -> usize {
        self.emitted
    }

    /// Assembles the feature map of all completed windows.
    ///
    /// Returns `None` before the first window completes.
    pub fn feature_map(&self) -> Option<FeatureMap> {
        if self.columns.is_empty() {
            None
        } else {
            Some(FeatureMap::from_columns(&self.columns))
        }
    }

    /// Releases excess buffer capacity (the bounded-memory maintenance a
    /// device would run between sessions). Emitted feature columns and
    /// pending samples are preserved, so results are unaffected.
    pub fn trim(&mut self) {
        self.bvp.shrink_to_fit();
        self.gsr.shrink_to_fit();
        self.skt.shrink_to_fit();
        self.columns.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::FeatureExtractor;
    use clear_sim::{Cohort, CohortConfig};

    #[test]
    fn streaming_matches_batch_extraction_exactly() {
        let config = CohortConfig::small(13);
        let cohort = Cohort::generate(&config);
        let rec = &cohort.recordings()[0];
        let wcfg = WindowConfig::default();
        let batch = FeatureExtractor::new(config.signal, wcfg).feature_map(rec);

        let mut streaming = StreamingExtractor::new(config.signal, wcfg);
        // Feed in uneven chunks to exercise the multi-rate buffering.
        let mut fed_b = 0;
        let mut fed_g = 0;
        let mut fed_s = 0;
        let chunks = [37usize, 111, 53, 400, 9999];
        for &c in &chunks {
            let nb = (fed_b + c * 8).min(rec.bvp.len());
            let ng = (fed_g + c).min(rec.gsr.len());
            let ns = (fed_s + c / 2).min(rec.skt.len());
            streaming.push(
                &rec.bvp[fed_b..nb],
                &rec.gsr[fed_g..ng],
                &rec.skt[fed_s..ns],
            );
            fed_b = nb;
            fed_g = ng;
            fed_s = ns;
        }
        // Flush any remainder.
        streaming.push(&rec.bvp[fed_b..], &rec.gsr[fed_g..], &rec.skt[fed_s..]);

        let live = streaming.feature_map().expect("windows completed");
        assert_eq!(live.window_count(), batch.window_count());
        for f in 0..live.feature_count() {
            for w in 0..live.window_count() {
                assert_eq!(
                    live.get(f, w),
                    batch.get(f, w),
                    "feature {f} window {w} diverged"
                );
            }
        }
    }

    #[test]
    fn no_windows_before_enough_samples() {
        let config = CohortConfig::small(1);
        let mut s = StreamingExtractor::new(config.signal, WindowConfig::default());
        assert!(s.feature_map().is_none());
        let emitted = s.push(&[0.0; 10], &[1.0; 2], &[33.0; 1]);
        assert!(emitted.is_empty());
        assert_eq!(s.window_count(), 0);
    }

    #[test]
    fn one_push_can_complete_multiple_windows() {
        let config = CohortConfig::small(5);
        let cohort = Cohort::generate(&config);
        let rec = &cohort.recordings()[0];
        let mut s = StreamingExtractor::new(config.signal, WindowConfig::default());
        let emitted = s.push(&rec.bvp, &rec.gsr, &rec.skt);
        // 30 s stimulus, 12 s window / 6 s hop → 4 windows at once.
        assert_eq!(emitted.len(), 4);
        assert_eq!(s.window_count(), 4);
        s.trim(); // must not disturb results
        assert_eq!(s.feature_map().unwrap().window_count(), 4);
    }
}
