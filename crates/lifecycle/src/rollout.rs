//! Canaried generation rollout: shadow-evaluate, adopt cluster-by-cluster,
//! roll back on regression.
//!
//! The controller never trains and never blocks serving. Its three moves:
//!
//! 1. **Shadow evaluation** — dual-predict a traffic sample through
//!    [`clear_serve::ServeEngine::predict_shadow`]: once with no
//!    overrides (the live models, observation-silent) and once with the
//!    candidate checkpoints. Both serves produce the same gated
//!    [`Prediction`]s real traffic would see, so the comparison is of
//!    *outcomes* (abstentions, confidence), not proxy losses.
//! 2. **Staged rollout** — clusters whose candidate held up are adopted
//!    one at a time through the engine's WAL-logged generation swap;
//!    clusters that failed the gate keep their current model, and
//!    clusters without a candidate are never touched.
//! 3. **Regression guard** — after adoption, a probe sample is served
//!    silently against the new generation; any cluster whose abstention
//!    rate regressed past the tolerance is restored to its base model
//!    (bit-for-bit, via the engine's delta-anchored rollback).

use clear_nn::network::Network;
use clear_serve::{ServeEngine, ServeError, ServeRequest};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Gates of the shadow evaluation and the post-rollout guard.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RolloutConfig {
    /// Minimum dual-predicted windows per cluster before it may adopt.
    pub min_shadow_windows: u64,
    /// Maximum tolerated rise of the abstention rate (candidate vs live,
    /// and post-rollout vs pre-rollout in the guard).
    pub max_abstention_regression: f64,
    /// Maximum tolerated drop of mean served confidence (candidate vs
    /// live).
    pub max_confidence_drop: f64,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        Self {
            min_shadow_windows: 16,
            max_abstention_regression: 0.05,
            max_confidence_drop: 0.10,
        }
    }
}

/// Dual-predict outcome aggregates of one cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterShadowStats {
    /// Dual-predicted windows.
    pub windows: u64,
    /// Windows the live side abstained on.
    pub live_abstained: u64,
    /// Windows the candidate side abstained on.
    pub shadow_abstained: u64,
    /// Sum of live confidences over live-served windows.
    pub live_confidence_sum: f64,
    /// Sum of candidate confidences over candidate-served windows.
    pub shadow_confidence_sum: f64,
    /// Windows where both sides served and agreed on the label.
    pub agreements: u64,
    /// Windows where both sides served (the agreement denominator).
    pub both_served: u64,
}

impl ClusterShadowStats {
    /// Live abstention rate (0 with no traffic).
    pub fn live_abstention_rate(&self) -> f64 {
        rate(self.live_abstained, self.windows)
    }

    /// Candidate abstention rate (0 with no traffic).
    pub fn shadow_abstention_rate(&self) -> f64 {
        rate(self.shadow_abstained, self.windows)
    }

    /// Mean live confidence over served windows (0 when it never served).
    pub fn live_mean_confidence(&self) -> f64 {
        mean(self.live_confidence_sum, self.windows - self.live_abstained)
    }

    /// Mean candidate confidence over served windows.
    pub fn shadow_mean_confidence(&self) -> f64 {
        mean(self.shadow_confidence_sum, self.windows - self.shadow_abstained)
    }

    /// Fraction of both-served windows where the labels agreed.
    pub fn agreement_rate(&self) -> f64 {
        rate(self.agreements, self.both_served)
    }
}

fn rate(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

fn mean(sum: f64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The result of one shadow evaluation pass.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShadowReport {
    /// Per-cluster aggregates over the dual-predicted traffic.
    pub clusters: BTreeMap<usize, ClusterShadowStats>,
    /// Requests skipped because either side returned a typed error
    /// (unknown user, overload); skipped traffic contributes nothing.
    pub skipped: u64,
}

/// Verdict of the gate for one candidate cluster.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RolloutDecision {
    /// The candidate held up: adopt.
    Adopt,
    /// Too little dual-predicted traffic to judge.
    InsufficientTraffic {
        /// Windows observed.
        windows: u64,
        /// Windows required.
        needed: u64,
    },
    /// The candidate abstained too much more than live.
    AbstentionRegression {
        /// Live abstention rate.
        live: f64,
        /// Candidate abstention rate.
        shadow: f64,
    },
    /// The candidate's served confidence dropped too far below live.
    ConfidenceRegression {
        /// Live mean confidence.
        live: f64,
        /// Candidate mean confidence.
        shadow: f64,
    },
}

/// One cluster's completed adoption.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdoptedCluster {
    /// The cluster that switched generations.
    pub cluster: usize,
    /// The engine generation stamp it now serves.
    pub generation: u64,
}

/// Shadow evaluation, staged adoption and regression rollback.
#[derive(Debug, Clone)]
pub struct RolloutController {
    config: RolloutConfig,
}

impl RolloutController {
    /// A controller with the given gates.
    pub fn new(config: RolloutConfig) -> Self {
        Self { config }
    }

    /// The configured gates.
    pub fn config(&self) -> &RolloutConfig {
        &self.config
    }

    /// Dual-predicts `traffic` against `candidates` and aggregates gated
    /// outcomes per cluster. Both serves are observation-silent and
    /// commit nothing — live traffic flowing concurrently is unaffected
    /// and unpolluted.
    pub fn shadow_eval(
        &self,
        engine: &ServeEngine,
        candidates: &HashMap<usize, Arc<Network>>,
        traffic: &[ServeRequest<'_>],
    ) -> ShadowReport {
        let _span = clear_obs::span(clear_obs::Stage::LifecycleShadowEval);
        clear_obs::counter_add(clear_obs::counters::LIFECYCLE_SHADOW_EVALS, 1);
        let no_overrides = HashMap::new();
        let live = engine.predict_shadow(traffic, &no_overrides);
        let shadow = engine.predict_shadow(traffic, candidates);
        let mut report = ShadowReport::default();
        for ((request, live), shadow) in traffic.iter().zip(live).zip(shadow) {
            let (Ok(live), Ok(shadow), Ok(cluster)) =
                (live, shadow, engine.cluster_of(request.user))
            else {
                report.skipped += 1;
                continue;
            };
            let stats = report.clusters.entry(cluster).or_default();
            for (l, s) in live.iter().zip(&shadow) {
                stats.windows += 1;
                match l.emotion {
                    Some(_) => stats.live_confidence_sum += f64::from(l.confidence),
                    None => stats.live_abstained += 1,
                }
                match s.emotion {
                    Some(_) => stats.shadow_confidence_sum += f64::from(s.confidence),
                    None => stats.shadow_abstained += 1,
                }
                if let (Some(le), Some(se)) = (l.emotion, s.emotion) {
                    stats.both_served += 1;
                    if le == se {
                        stats.agreements += 1;
                    }
                }
            }
        }
        report
    }

    /// Judges every candidate cluster against the gates.
    pub fn decide(
        &self,
        report: &ShadowReport,
        candidates: &HashMap<usize, Arc<Network>>,
    ) -> BTreeMap<usize, RolloutDecision> {
        let mut decisions = BTreeMap::new();
        for &cluster in candidates.keys() {
            let stats = report.clusters.get(&cluster).copied().unwrap_or_default();
            let decision = if stats.windows < self.config.min_shadow_windows {
                RolloutDecision::InsufficientTraffic {
                    windows: stats.windows,
                    needed: self.config.min_shadow_windows,
                }
            } else if stats.shadow_abstention_rate()
                > stats.live_abstention_rate() + self.config.max_abstention_regression
            {
                RolloutDecision::AbstentionRegression {
                    live: stats.live_abstention_rate(),
                    shadow: stats.shadow_abstention_rate(),
                }
            } else if stats.shadow_mean_confidence()
                < stats.live_mean_confidence() - self.config.max_confidence_drop
            {
                RolloutDecision::ConfidenceRegression {
                    live: stats.live_mean_confidence(),
                    shadow: stats.shadow_mean_confidence(),
                }
            } else {
                RolloutDecision::Adopt
            };
            decisions.insert(cluster, decision);
        }
        decisions
    }

    /// Adopts every [`RolloutDecision::Adopt`] cluster, one WAL-logged
    /// generation swap at a time (ascending cluster order, so two
    /// controllers racing converge on the same order). Clusters that
    /// failed the gate are left serving their current model.
    ///
    /// # Errors
    ///
    /// Returns the first engine error; clusters already adopted stay
    /// adopted (each adoption is individually durable).
    pub fn roll_out(
        &self,
        engine: &ServeEngine,
        candidates: &HashMap<usize, Arc<Network>>,
        decisions: &BTreeMap<usize, RolloutDecision>,
    ) -> Result<Vec<AdoptedCluster>, ServeError> {
        let mut adopted = Vec::new();
        for (&cluster, decision) in decisions {
            if !matches!(decision, RolloutDecision::Adopt) {
                continue;
            }
            let Some(net) = candidates.get(&cluster) else {
                continue;
            };
            let generation = engine.adopt_cluster_model(cluster, net)?;
            adopted.push(AdoptedCluster {
                cluster,
                generation,
            });
        }
        Ok(adopted)
    }

    /// Post-rollout regression guard: serves `probe` silently against the
    /// adopted generation and restores any adopted cluster whose
    /// abstention rate regressed past the tolerance relative to its
    /// pre-rollout live rate in `baseline`. Returns the rolled-back
    /// clusters (the engine's delta-anchored restore makes their serving
    /// bit-identical to before the rollout).
    ///
    /// # Errors
    ///
    /// Returns the first engine error from a restore; earlier restores
    /// stick.
    pub fn guard(
        &self,
        engine: &ServeEngine,
        adopted: &[AdoptedCluster],
        baseline: &ShadowReport,
        probe: &[ServeRequest<'_>],
    ) -> Result<Vec<usize>, ServeError> {
        let no_overrides = HashMap::new();
        let results = engine.predict_shadow(probe, &no_overrides);
        let mut windows: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        for (request, result) in probe.iter().zip(results) {
            let (Ok(predictions), Ok(cluster)) = (result, engine.cluster_of(request.user)) else {
                continue;
            };
            let slot = windows.entry(cluster).or_default();
            for p in &predictions {
                slot.0 += 1;
                if p.emotion.is_none() {
                    slot.1 += 1;
                }
            }
        }
        let mut rolled_back = Vec::new();
        for a in adopted {
            let Some(&(served, abstained)) = windows.get(&a.cluster) else {
                continue;
            };
            if served == 0 {
                continue;
            }
            let before = baseline
                .clusters
                .get(&a.cluster)
                .map_or(0.0, |s| s.live_abstention_rate());
            let after = abstained as f64 / served as f64;
            if after > before + self.config.max_abstention_regression {
                engine.restore_cluster_model(a.cluster)?;
                rolled_back.push(a.cluster);
            }
        }
        Ok(rolled_back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(windows: u64, live_abs: u64, shadow_abs: u64) -> ClusterShadowStats {
        ClusterShadowStats {
            windows,
            live_abstained: live_abs,
            shadow_abstained: shadow_abs,
            live_confidence_sum: 0.9 * (windows - live_abs) as f64,
            shadow_confidence_sum: 0.9 * (windows - shadow_abs) as f64,
            ..ClusterShadowStats::default()
        }
    }

    fn candidates(clusters: &[usize]) -> HashMap<usize, Arc<Network>> {
        clusters
            .iter()
            .map(|&c| {
                (
                    c,
                    Arc::new(clear_nn::network::cnn_lstm_compact(4, 5, 2, c as u64)),
                )
            })
            .collect()
    }

    #[test]
    fn healthy_candidate_is_adopted() {
        let controller = RolloutController::new(RolloutConfig::default());
        let mut report = ShadowReport::default();
        report.clusters.insert(0, stats(100, 10, 9));
        let decisions = controller.decide(&report, &candidates(&[0]));
        assert_eq!(decisions[&0], RolloutDecision::Adopt);
    }

    #[test]
    fn abstention_regression_is_rejected() {
        let controller = RolloutController::new(RolloutConfig::default());
        let mut report = ShadowReport::default();
        report.clusters.insert(0, stats(100, 10, 40));
        let decisions = controller.decide(&report, &candidates(&[0]));
        assert!(matches!(
            decisions[&0],
            RolloutDecision::AbstentionRegression { .. }
        ));
    }

    #[test]
    fn thin_traffic_is_rejected() {
        let controller = RolloutController::new(RolloutConfig::default());
        let mut report = ShadowReport::default();
        report.clusters.insert(0, stats(3, 0, 0));
        let decisions = controller.decide(&report, &candidates(&[0]));
        assert!(matches!(
            decisions[&0],
            RolloutDecision::InsufficientTraffic { .. }
        ));
    }

    #[test]
    fn unseen_candidate_cluster_is_insufficient_not_adopted() {
        // A candidate whose cluster saw no shadow traffic at all must not
        // slip through the gate.
        let controller = RolloutController::new(RolloutConfig::default());
        let decisions = controller.decide(&ShadowReport::default(), &candidates(&[2]));
        assert!(matches!(
            decisions[&2],
            RolloutDecision::InsufficientTraffic { .. }
        ));
    }

    #[test]
    fn confidence_regression_is_rejected() {
        let controller = RolloutController::new(RolloutConfig::default());
        let mut s = stats(100, 10, 10);
        s.shadow_confidence_sum = 0.5 * 90.0;
        let mut report = ShadowReport::default();
        report.clusters.insert(1, s);
        let decisions = controller.decide(&report, &candidates(&[1]));
        assert!(matches!(
            decisions[&1],
            RolloutDecision::ConfidenceRegression { .. }
        ));
    }

    #[test]
    fn stats_rates_handle_zero_traffic() {
        let s = ClusterShadowStats::default();
        assert_eq!(s.live_abstention_rate(), 0.0);
        assert_eq!(s.shadow_mean_confidence(), 0.0);
        assert_eq!(s.agreement_rate(), 0.0);
    }
}
