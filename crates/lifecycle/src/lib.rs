//! # clear-lifecycle — drift detection, re-clustering, canaried rollout
//!
//! The cold-start pipeline ships one frozen generation of cluster models
//! and serves it forever; real populations drift away from their
//! calibration (sensor aging, habituation, baseline shift), and quality
//! decays silently behind the abstention gate. This crate closes the
//! loop without ever putting training on the serving path:
//!
//! ```text
//!            ┌────────────────────────────────────────────────┐
//!            ▼                                                │
//!   Monitor ──drift──▶ Refit ──candidates──▶ Shadow ──pass──▶ Rollout
//!      ▲                  │                     │                │
//!      │                  └──no survivors───────┼──fail──▶ (keep live)
//!      │                                        │                │
//!      └──────────────── Rollback ◀──regression─┴────────────────┘
//! ```
//!
//! * [`DriftMonitor`] — diffs the serving layer's own cumulative
//!   counters into sliding-window rate samples and raises typed
//!   [`DriftSignal`]s when the recent span departs from the reference.
//! * [`Refitter`] — re-runs per-cluster training on recently observed
//!   users' data, entirely off the serving path, and applies the
//!   personalization-holdout rule before anything ships; survivors form
//!   a [`CandidateGeneration`], sealable as a checksummed artifact.
//! * [`RolloutController`] — shadow-evaluates candidates against live
//!   traffic (dual-predict through the engine, observation-silent),
//!   adopts passing clusters one WAL-logged generation swap at a time,
//!   and restores any cluster that regresses after adoption.
//!
//! The load-bearing invariants, proven by `tests/lifecycle.rs` at the
//! workspace root: untouched clusters serve bit-identical predictions
//! through every phase; a rollback restores the prior generation
//! bit-for-bit; and the serving path never trains (the `nn.train_epochs`
//! counter is pinned across shadow evaluation and rollout).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod refit;
pub mod rollout;

pub use drift::{DriftConfig, DriftMonitor, DriftSignal, WindowSample};
pub use refit::{CandidateGeneration, ClusterCandidate, RefitConfig, Refitter};
pub use rollout::{
    AdoptedCluster, ClusterShadowStats, RolloutConfig, RolloutController, RolloutDecision,
    ShadowReport,
};

/// The lifecycle state machine (see `DESIGN.md` §16). States advance
/// Monitor → Refit → Shadow → Rollout and fall back to Monitor; Rollback
/// is reachable only from Rollout (a post-adoption regression) and
/// returns to Monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LifecycleState {
    /// Watching serving telemetry for drift; the steady state.
    Monitor,
    /// Training candidate cluster models on recent users, off-path.
    Refit,
    /// Dual-predicting candidates against live traffic.
    Shadow,
    /// Adopting passing clusters, one generation swap at a time.
    Rollout,
    /// Restoring a regressed cluster to its base generation.
    Rollback,
}

impl LifecycleState {
    /// Whether `next` is a legal transition from this state.
    pub fn can_advance_to(self, next: LifecycleState) -> bool {
        use LifecycleState::*;
        matches!(
            (self, next),
            (Monitor, Refit)        // drift detected
                | (Refit, Shadow)   // candidates survived the holdout
                | (Refit, Monitor)  // no survivors
                | (Shadow, Rollout) // gate passed for at least one cluster
                | (Shadow, Monitor) // every candidate failed the gate
                | (Rollout, Monitor)  // adoption complete and healthy
                | (Rollout, Rollback) // post-adoption regression
                | (Rollback, Monitor) // restored; back to watching
        )
    }
}

#[cfg(test)]
mod tests {
    use super::LifecycleState::*;

    #[test]
    fn happy_path_is_legal() {
        for (a, b) in [(Monitor, Refit), (Refit, Shadow), (Shadow, Rollout), (Rollout, Monitor)] {
            assert!(a.can_advance_to(b), "{a:?} -> {b:?}");
        }
    }

    #[test]
    fn rollback_is_only_reachable_from_rollout() {
        assert!(Rollout.can_advance_to(Rollback));
        for s in [Monitor, Refit, Shadow, Rollback] {
            assert!(!s.can_advance_to(Rollback), "{s:?} must not roll back");
        }
    }

    #[test]
    fn no_state_skips_the_gate() {
        assert!(!Monitor.can_advance_to(Rollout));
        assert!(!Refit.can_advance_to(Rollout));
        assert!(!Monitor.can_advance_to(Shadow));
    }
}
