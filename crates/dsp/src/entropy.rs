//! Entropy and non-linear complexity measures.
//!
//! The paper's feature set includes "non-linear" features; the standard
//! choices for physiological signals are histogram (Shannon) entropy,
//! sample entropy and approximate entropy, all provided here.

use crate::DspError;

/// Shannon entropy (nats) of the amplitude histogram of `x` with `bins`
/// equal-width bins over the signal's range.
///
/// Constant signals (zero range) have zero entropy.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice and
/// [`DspError::BadParameter`] when `bins == 0`.
pub fn shannon_entropy(x: &[f32], bins: usize) -> Result<f32, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if bins == 0 {
        return Err(DspError::BadParameter {
            name: "bins",
            reason: "at least one histogram bin is required",
        });
    }
    let lo = crate::stats::min(x)?;
    let hi = crate::stats::max(x)?;
    let range = hi - lo;
    if range < f32::EPSILON {
        return Ok(0.0);
    }
    let mut counts = vec![0usize; bins];
    for &v in x {
        let idx = (((v - lo) / range) * bins as f32) as usize;
        counts[idx.min(bins - 1)] += 1;
    }
    let n = x.len() as f32;
    Ok(-counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f32 / n;
            p * p.ln()
        })
        .sum::<f32>())
}

/// Sample entropy `SampEn(m, r)` of `x`.
///
/// Counts template matches of length `m` and `m + 1` under Chebyshev
/// distance tolerance `r` (absolute units — pre-scale by the signal's
/// standard deviation for the conventional `r = 0.2 σ`). Self-matches are
/// excluded. Returns `ln(A/B)` negated, i.e. `-ln(A/B)`; when no matches
/// exist the result saturates at a large finite value instead of infinity so
/// downstream feature maps stay finite.
///
/// # Errors
///
/// Returns [`DspError::BadLength`] when `x.len() <= m + 1` and
/// [`DspError::BadParameter`] when `r <= 0` or `m == 0`.
pub fn sample_entropy(x: &[f32], m: usize, r: f32) -> Result<f32, DspError> {
    if m == 0 {
        return Err(DspError::BadParameter {
            name: "m",
            reason: "template length must be at least 1",
        });
    }
    if r.is_nan() || r <= 0.0 {
        return Err(DspError::BadParameter {
            name: "r",
            reason: "tolerance must be positive",
        });
    }
    if x.len() <= m + 1 {
        return Err(DspError::BadLength {
            expected: "more than m + 1 samples",
            actual: x.len(),
        });
    }
    let count = |len: usize| -> u64 {
        let n = x.len() - len + 1;
        let mut matches = 0u64;
        for i in 0..n {
            for j in i + 1..n {
                let mut ok = true;
                for k in 0..len {
                    if (x[i + k] - x[j + k]).abs() > r {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    matches += 1;
                }
            }
        }
        matches
    };
    let b = count(m);
    let a = count(m + 1);
    const SATURATION: f32 = 10.0;
    if a == 0 || b == 0 {
        return Ok(SATURATION);
    }
    Ok((-(a as f32 / b as f32).ln()).min(SATURATION))
}

/// Approximate entropy `ApEn(m, r)` of `x` (includes self-matches, per
/// Pincus' original definition).
///
/// # Errors
///
/// Same conditions as [`sample_entropy`].
pub fn approximate_entropy(x: &[f32], m: usize, r: f32) -> Result<f32, DspError> {
    if m == 0 {
        return Err(DspError::BadParameter {
            name: "m",
            reason: "template length must be at least 1",
        });
    }
    if r.is_nan() || r <= 0.0 {
        return Err(DspError::BadParameter {
            name: "r",
            reason: "tolerance must be positive",
        });
    }
    if x.len() <= m + 1 {
        return Err(DspError::BadLength {
            expected: "more than m + 1 samples",
            actual: x.len(),
        });
    }
    let phi = |len: usize| -> f32 {
        let n = x.len() - len + 1;
        let mut total = 0.0f32;
        for i in 0..n {
            let mut c = 0usize;
            for j in 0..n {
                let mut ok = true;
                for k in 0..len {
                    if (x[i + k] - x[j + k]).abs() > r {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    c += 1;
                }
            }
            total += (c as f32 / n as f32).ln();
        }
        total / n as f32
    };
    Ok(phi(m) - phi(m + 1))
}

/// Petrosian fractal dimension — a cheap waveform-complexity index based on
/// the count of sign changes in the first difference.
pub fn petrosian_fd(x: &[f32]) -> f32 {
    let n = x.len();
    if n < 3 {
        return 0.0;
    }
    let diffs: Vec<f32> = x.windows(2).map(|w| w[1] - w[0]).collect();
    let n_delta = diffs
        .windows(2)
        .filter(|w| w[0].signum() != w[1].signum() && w[0] != 0.0)
        .count();
    let nf = n as f32;
    nf.ln() / (nf.ln() + (nf / (nf + 0.4 * n_delta as f32)).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regular_signal(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 16.0).sin())
            .collect()
    }

    /// Deterministic pseudo-random-looking signal (logistic map, chaotic).
    fn chaotic_signal(n: usize) -> Vec<f32> {
        let mut v = 0.37f32;
        (0..n)
            .map(|_| {
                v = 3.99 * v * (1.0 - v);
                v * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn shannon_entropy_flat_beats_constant() {
        let uniform: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let constant = vec![3.0f32; 256];
        let eu = shannon_entropy(&uniform, 16).unwrap();
        let ec = shannon_entropy(&constant, 16).unwrap();
        assert!((eu - (16.0f32).ln()).abs() < 0.05);
        assert_eq!(ec, 0.0);
    }

    #[test]
    fn shannon_entropy_validates() {
        assert!(shannon_entropy(&[], 8).is_err());
        assert!(shannon_entropy(&[1.0], 0).is_err());
    }

    #[test]
    fn sample_entropy_chaos_exceeds_periodicity() {
        let reg = regular_signal(200);
        let chaos = chaotic_signal(200);
        let r_reg = 0.2 * crate::stats::std_dev(&reg);
        let r_chaos = 0.2 * crate::stats::std_dev(&chaos);
        let se_reg = sample_entropy(&reg, 2, r_reg).unwrap();
        let se_chaos = sample_entropy(&chaos, 2, r_chaos).unwrap();
        assert!(
            se_chaos > se_reg,
            "chaotic {se_chaos} should exceed regular {se_reg}"
        );
    }

    #[test]
    fn sample_entropy_saturates_not_infinite() {
        // A strictly monotonic ramp with tiny tolerance has no m+1 matches.
        let ramp: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let se = sample_entropy(&ramp, 2, 1e-6).unwrap();
        assert!(se.is_finite());
        assert!(se >= 9.0);
    }

    #[test]
    fn sample_entropy_validates() {
        assert!(sample_entropy(&[1.0, 2.0], 2, 0.1).is_err());
        assert!(sample_entropy(&regular_signal(64), 0, 0.1).is_err());
        assert!(sample_entropy(&regular_signal(64), 2, 0.0).is_err());
    }

    #[test]
    fn approximate_entropy_orders_like_sample_entropy() {
        let reg = regular_signal(150);
        let chaos = chaotic_signal(150);
        let ae_reg = approximate_entropy(&reg, 2, 0.2 * crate::stats::std_dev(&reg)).unwrap();
        let ae_chaos = approximate_entropy(&chaos, 2, 0.2 * crate::stats::std_dev(&chaos)).unwrap();
        assert!(ae_chaos > ae_reg);
    }

    #[test]
    fn petrosian_fd_increases_with_roughness() {
        let smooth = regular_signal(256);
        let rough = chaotic_signal(256);
        assert!(petrosian_fd(&rough) > petrosian_fd(&smooth));
        assert_eq!(petrosian_fd(&[1.0, 2.0]), 0.0);
    }
}
