//! Edge fault injection and fault-tolerant serving.
//!
//! Real edge deployments fail in ways the clean simulator never shows:
//! transient bus/IO glitches drop single inferences, memory pressure
//! evicts the (larger) personalized checkpoint, and battery brownouts
//! stall the accelerator. This module makes those failure modes explicit
//! and testable:
//!
//! * [`FaultInjector`] draws seeded, reproducible faults at configurable
//!   rates ([`FaultConfig`]);
//! * [`RetryPolicy`] bounds how hard the device tries before declaring an
//!   inference unavailable, with exponential backoff (simulated — no real
//!   sleeping, the accumulated backoff is accounted in milliseconds);
//! * [`ResilientDeployment`] wraps a primary [`EdgeDeployment`] (e.g. a
//!   personalized checkpoint) plus an optional fallback (the shared,
//!   un-personalized cluster checkpoint): transient faults retry,
//!   memory exhaustion permanently degrades to the fallback model, and
//!   brownouts retry after a longer backoff. [`ServeStats`] aggregates
//!   availability over the deployment's lifetime.
//!
//! With the default retry budget of 3 and a transient-fault rate `p`, the
//! probability an inference is lost is `p⁴` — at `p = 0.1` that is one in
//! ten thousand, i.e. ≥ 99.99 % availability.

use crate::deploy::EdgeDeployment;
use clear_nn::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Rates of the injectable fault classes, each a per-attempt probability
/// in `[0, 1]`. Their sum must stay ≤ 1 (the remainder is the no-fault
/// probability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Transient glitch rate (sensor bus hiccup, dropped DMA): the
    /// attempt fails but an immediate retry can succeed.
    #[serde(default)]
    pub transient_rate: f32,
    /// Memory-exhaustion rate: the serving checkpoint is evicted; the
    /// device must fall back to a smaller/shared model.
    #[serde(default)]
    pub memory_fault_rate: f32,
    /// Battery-brownout rate: the accelerator stalls; retry only after a
    /// longer backoff.
    #[serde(default)]
    pub brownout_rate: f32,
    /// RNG seed — same seed, same fault sequence.
    #[serde(default)]
    pub seed: u64,
}

impl FaultConfig {
    /// A fault-free configuration (every attempt succeeds).
    pub fn none() -> Self {
        Self::default()
    }

    /// Transient-only faults at `rate`, the common field condition.
    pub fn transient(rate: f32, seed: u64) -> Self {
        Self {
            transient_rate: rate,
            seed,
            ..Self::default()
        }
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fault {
    /// Recoverable one-shot glitch.
    Transient,
    /// Serving checkpoint evicted under memory pressure.
    MemoryExhausted,
    /// Battery brownout stalled the accelerator.
    Brownout,
}

/// Seeded fault source. Deterministic: the same seed yields the same
/// fault sequence, so failure scenarios are replayable in tests.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SmallRng,
    drawn: usize,
}

impl FaultInjector {
    /// Creates an injector from a config.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or the rates sum above 1.
    pub fn new(config: FaultConfig) -> Self {
        let rates = [
            config.transient_rate,
            config.memory_fault_rate,
            config.brownout_rate,
        ];
        for r in rates {
            assert!((0.0..=1.0).contains(&r), "fault rate {r} outside [0, 1]");
        }
        assert!(
            rates.iter().sum::<f32>() <= 1.0 + 1e-6,
            "fault rates sum above 1"
        );
        Self {
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            drawn: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Total faults+non-faults drawn so far.
    pub fn drawn(&self) -> usize {
        self.drawn
    }

    /// Draws the fault (if any) afflicting the next attempt.
    pub fn draw(&mut self) -> Option<Fault> {
        self.drawn += 1;
        let u: f32 = self.rng.gen_range(0.0..1.0);
        let mut acc = self.config.transient_rate;
        if u < acc {
            return Some(Fault::Transient);
        }
        acc += self.config.memory_fault_rate;
        if u < acc {
            return Some(Fault::MemoryExhausted);
        }
        acc += self.config.brownout_rate;
        if u < acc {
            return Some(Fault::Brownout);
        }
        None
    }
}

/// Bounded-retry policy of a [`ResilientDeployment`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (so `max_retries = 3`
    /// allows 4 attempts total).
    pub max_retries: usize,
    /// Backoff before the first retry, milliseconds (simulated).
    pub backoff_base_ms: f32,
    /// Multiplier applied to the backoff per further retry.
    pub backoff_factor: f32,
    /// Extra multiplier on the backoff after a brownout (power faults
    /// need longer to clear than bus glitches).
    pub brownout_backoff_factor: f32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_ms: 5.0,
            backoff_factor: 2.0,
            brownout_backoff_factor: 10.0,
        }
    }
}

/// Lifetime serving statistics of a [`ResilientDeployment`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Inference requests received.
    pub requests: usize,
    /// Requests that produced logits (primary or fallback).
    pub served: usize,
    /// Requests lost after exhausting the retry budget.
    pub unavailable: usize,
    /// Individual faults absorbed (each retried attempt counts one).
    pub faults_absorbed: usize,
    /// Requests served by the fallback checkpoint.
    pub fallback_serves: usize,
    /// Total simulated backoff waited, milliseconds.
    pub backoff_ms: f32,
}

impl ServeStats {
    /// Fraction of requests that produced a prediction, in `[0, 1]`.
    /// Returns 1.0 before any request (vacuous availability).
    pub fn availability(&self) -> f32 {
        if self.requests == 0 {
            1.0
        } else {
            self.served as f32 / self.requests as f32
        }
    }
}

/// Outcome of one fault-tolerant serve.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// The logits, or `None` when the retry budget was exhausted.
    pub logits: Option<Tensor>,
    /// Attempts made (1 = clean first try).
    pub attempts: usize,
    /// Whether the fallback checkpoint produced the result.
    pub served_by_fallback: bool,
    /// Simulated backoff accumulated by this request, milliseconds.
    pub backoff_ms: f32,
}

/// A fault-tolerant wrapper around one or two [`EdgeDeployment`]s.
///
/// `primary` is the preferred checkpoint (typically personalized);
/// `fallback`, when present, is the smaller shared cluster checkpoint
/// kept in reserve. A [`Fault::MemoryExhausted`] permanently degrades
/// serving to the fallback — mirroring a real device evicting the large
/// model under memory pressure and reloading the resident shared one.
#[derive(Debug, Clone)]
pub struct ResilientDeployment {
    primary: EdgeDeployment,
    fallback: Option<EdgeDeployment>,
    injector: FaultInjector,
    policy: RetryPolicy,
    stats: ServeStats,
    degraded: bool,
}

impl ResilientDeployment {
    /// Wraps a primary deployment with faults and retries.
    pub fn new(primary: EdgeDeployment, faults: FaultConfig, policy: RetryPolicy) -> Self {
        Self {
            primary,
            fallback: None,
            injector: FaultInjector::new(faults),
            policy,
            stats: ServeStats::default(),
            degraded: false,
        }
    }

    /// Adds a fallback checkpoint (e.g. the un-personalized cluster
    /// model) used after memory exhaustion.
    pub fn with_fallback(mut self, fallback: EdgeDeployment) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Whether serving has degraded to the fallback checkpoint.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The primary deployment.
    pub fn primary(&self) -> &EdgeDeployment {
        &self.primary
    }

    /// Restores primary serving (e.g. after the device reloads the
    /// personalized checkpoint when memory pressure clears).
    pub fn restore_primary(&mut self) {
        self.degraded = false;
    }

    /// Serves one inference through the fault model: transient faults and
    /// brownouts retry with (simulated, exponential) backoff up to the
    /// policy's budget; memory exhaustion switches to the fallback
    /// checkpoint when one exists, otherwise retries like a transient.
    /// Returns `logits: None` when every attempt faulted.
    pub fn serve(&mut self, input: &Tensor) -> ServeOutcome {
        self.stats.requests += 1;
        let mut attempts = 0usize;
        let mut backoff_ms = 0.0f32;
        let mut next_backoff = self.policy.backoff_base_ms;
        let max_attempts = self.policy.max_retries + 1;
        while attempts < max_attempts {
            attempts += 1;
            match self.injector.draw() {
                None => {
                    let use_fallback = self.degraded && self.fallback.is_some();
                    let logits = if use_fallback {
                        self.fallback
                            .as_mut()
                            .expect("fallback presence just checked")
                            .infer(input)
                    } else {
                        self.primary.infer(input)
                    };
                    self.stats.served += 1;
                    if use_fallback {
                        self.stats.fallback_serves += 1;
                        clear_obs::counter_add(clear_obs::counters::FALLBACK_SERVES, 1);
                    }
                    self.stats.backoff_ms += backoff_ms;
                    return ServeOutcome {
                        logits: Some(logits),
                        attempts,
                        served_by_fallback: use_fallback,
                        backoff_ms,
                    };
                }
                Some(fault) => {
                    self.stats.faults_absorbed += 1;
                    clear_obs::counter_add(clear_obs::counters::FAULTS_ABSORBED, 1);
                    let mut wait = next_backoff;
                    match fault {
                        Fault::Transient => {}
                        Fault::Brownout => wait *= self.policy.brownout_backoff_factor,
                        Fault::MemoryExhausted => {
                            if self.fallback.is_some() {
                                // The big checkpoint is gone; keep serving
                                // from the resident shared model.
                                self.degraded = true;
                            }
                        }
                    }
                    backoff_ms += wait;
                    next_backoff *= self.policy.backoff_factor;
                }
            }
        }
        self.stats.unavailable += 1;
        clear_obs::counter_add(clear_obs::counters::UNAVAILABLE, 1);
        self.stats.backoff_ms += backoff_ms;
        ServeOutcome {
            logits: None,
            attempts,
            served_by_fallback: false,
            backoff_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use clear_nn::network::cnn_lstm;

    fn deployment(seed: u64) -> EdgeDeployment {
        EdgeDeployment::new(cnn_lstm(30, 5, 2, seed), Device::Gpu, &[1, 30, 5])
    }

    #[test]
    fn injector_is_deterministic_and_respects_rates() {
        let config = FaultConfig {
            transient_rate: 0.3,
            memory_fault_rate: 0.1,
            brownout_rate: 0.1,
            seed: 42,
        };
        let faults: Vec<Option<Fault>> = (0..200)
            .map(|_| FaultInjector::new(config).draw())
            .collect();
        // Fresh injectors with the same seed always draw the same first fault.
        assert!(faults.windows(2).all(|w| w[0] == w[1]));
        let mut injector = FaultInjector::new(config);
        let n_faults = (0..2000).filter(|_| injector.draw().is_some()).count();
        let rate = n_faults as f32 / 2000.0;
        assert!(
            (rate - 0.5).abs() < 0.05,
            "empirical fault rate {rate} far from configured 0.5"
        );
        assert_eq!(injector.drawn(), 2000);
    }

    #[test]
    fn zero_rates_never_fault() {
        let mut injector = FaultInjector::new(FaultConfig::none());
        assert!((0..500).all(|_| injector.draw().is_none()));
    }

    #[test]
    #[should_panic(expected = "fault rates sum above 1")]
    fn overfull_rates_are_rejected() {
        FaultInjector::new(FaultConfig {
            transient_rate: 0.7,
            memory_fault_rate: 0.7,
            brownout_rate: 0.0,
            seed: 0,
        });
    }

    #[test]
    fn clean_serving_is_transparent() {
        let mut plain = deployment(3);
        let mut resilient =
            ResilientDeployment::new(deployment(3), FaultConfig::none(), RetryPolicy::default());
        let x = Tensor::zeros(&[1, 30, 5]);
        let outcome = resilient.serve(&x);
        assert_eq!(outcome.attempts, 1);
        assert!(!outcome.served_by_fallback);
        assert_eq!(outcome.backoff_ms, 0.0);
        assert_eq!(
            outcome.logits.unwrap().as_slice(),
            plain.infer(&x).as_slice()
        );
        assert_eq!(resilient.stats().availability(), 1.0);
    }

    #[test]
    fn transient_faults_retry_with_growing_backoff() {
        // transient_rate 1.0 faults every attempt: the request must burn
        // the whole retry budget and come back unavailable.
        let mut resilient = ResilientDeployment::new(
            deployment(5),
            FaultConfig::transient(1.0, 7),
            RetryPolicy::default(),
        );
        let outcome = resilient.serve(&Tensor::zeros(&[1, 30, 5]));
        assert!(outcome.logits.is_none());
        assert_eq!(outcome.attempts, 4);
        // 5 + 10 + 20 + 40 with default base 5 / factor 2.
        assert!((outcome.backoff_ms - 75.0).abs() < 1e-3);
        assert_eq!(resilient.stats().unavailable, 1);
        assert_eq!(resilient.stats().availability(), 0.0);
    }

    #[test]
    fn memory_exhaustion_degrades_to_fallback() {
        let mut resilient = ResilientDeployment::new(
            deployment(9),
            FaultConfig {
                memory_fault_rate: 1.0,
                ..FaultConfig::none()
            },
            RetryPolicy::default(),
        )
        .with_fallback(deployment(11));
        let x = Tensor::zeros(&[1, 30, 5]);
        // Every draw is MemoryExhausted, so the request exhausts retries —
        // but serving is now degraded, and stays degraded.
        let first = resilient.serve(&x);
        assert!(first.logits.is_none());
        assert!(resilient.is_degraded());
        // Stop injecting: the next serve succeeds via the fallback.
        let mut calm =
            ResilientDeployment::new(deployment(9), FaultConfig::none(), RetryPolicy::default())
                .with_fallback(deployment(11));
        calm.degraded = true;
        let outcome = calm.serve(&x);
        assert!(outcome.served_by_fallback);
        assert!(outcome.logits.is_some());
        assert_eq!(calm.stats().fallback_serves, 1);
        calm.restore_primary();
        assert!(!calm.is_degraded());
        let outcome = calm.serve(&x);
        assert!(!outcome.served_by_fallback);
    }

    #[test]
    fn availability_survives_ten_percent_transients() {
        let mut resilient = ResilientDeployment::new(
            deployment(13),
            FaultConfig::transient(0.10, 99),
            RetryPolicy::default(),
        );
        let x = Tensor::zeros(&[1, 30, 5]);
        for _ in 0..500 {
            resilient.serve(&x);
        }
        let stats = resilient.stats();
        assert_eq!(stats.requests, 500);
        assert!(
            stats.availability() >= 0.99,
            "availability {} below 0.99 at 10% transient faults",
            stats.availability()
        );
        assert!(stats.faults_absorbed > 0, "faults must actually fire");
    }
}
