//! # clear-bench — experiment harness
//!
//! Thin command-line wrappers around `clear-core`'s experiment runners.
//! One binary per paper artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table I (accuracy/F1 comparison of all validation protocols) |
//! | `table2` | Table II (cloud-edge accuracy + MTC/MPC measurements) |
//! | `figure1` | Figure 1 (CLEAR architecture — pipeline stage trace) |
//! | `figure2` | Figure 2 (CNN-LSTM architecture — layer summary) |
//! | `cluster_k_selection` | §IV-A cluster-count selection (K = 4) |
//! | `ablation_assignment` | CA with vs. without internal sub-centroids |
//! | `ablation_finetune` | fine-tuning label-budget sweep |
//! | `robustness_curve` | accuracy/abstention/availability vs. artifact severity |
//! | `bench_exec` | execution-model throughput + LOSO driver scaling (`BENCH_exec.json`) |
//! | `bench_serve` | multi-tenant engine vs. sequential serving + cache sweep (`BENCH_serve.json`) |
//! | `bench_durable` | WAL/snapshot overhead + crash-recovery timing (`BENCH_durable.json`) |
//! | `bench_stream` | 10k concurrent streaming sessions: throughput, chunk→prediction latency, buffer bounds (`BENCH_stream.json`) |
//! | `bench_lifecycle` | drift-detection latency, shadow-eval overhead, rollout/rollback wall time (`BENCH_lifecycle.json`) |
//!
//! All binaries accept `--quick` (reduced profile for smoke runs) and
//! `--seed <n>`.

#![forbid(unsafe_code)]

use clear_core::ClearConfig;

/// Shared CLI options of every experiment binary.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The resolved experiment configuration.
    pub config: ClearConfig,
    /// Where to additionally write the machine-readable results, when the
    /// user passed `--json <path>`.
    pub json_path: Option<std::path::PathBuf>,
}

/// Parses the shared CLI flags (`--quick`, `--seed <n>`, `--json <path>`).
///
/// Unknown flags abort with a usage message.
pub fn cli_from_args() -> Cli {
    let mut quick = false;
    let mut seed = 2025u64;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--json" => {
                json_path = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--json needs a path")),
                ));
            }
            "--help" | "-h" => usage("usage"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let config = if quick {
        ClearConfig::quick(seed)
    } else {
        ClearConfig::paper(seed)
    };
    Cli { config, json_path }
}

/// Backwards-compatible helper returning only the configuration.
pub fn config_from_args() -> ClearConfig {
    cli_from_args().config
}

/// Writes serializable results to the `--json` path if one was given.
pub fn maybe_write_json<T: serde::Serialize>(cli: &Cli, results: &T) {
    if let Some(path) = &cli.json_path {
        match serde_json::to_string_pretty(results) {
            Ok(json) => match std::fs::write(path, json) {
                Ok(()) => eprintln!("results written to {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            },
            Err(e) => eprintln!("could not serialize results: {e}"),
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: <binary> [--quick] [--seed <n>] [--json <path>]");
    std::process::exit(2);
}

/// Prints a `(stage, done, total)` progress line in place.
pub fn print_progress(stage: &str, done: usize, total: usize) {
    eprint!("\r{stage}: {done}/{total}        ");
    if done == total {
        eprintln!();
    }
}
