//! Table I / Table II experiment runners and report formatting.
//!
//! Each runner executes the corresponding evaluation protocol end to end
//! and renders a text table mirroring the paper's layout, with the paper's
//! published numbers alongside for comparison. The experiment binaries in
//! `clear-bench` are thin wrappers around these functions.

use crate::config::ClearConfig;
use crate::dataset::PreparedCohort;
use crate::evaluation::{self, ClearValidation};
use clear_edge::{Device, Measurement};
use clear_nn::metrics::Aggregate;
use serde::{Deserialize, Serialize};

/// Accuracy/F1 quadruple as the paper's tables report them (percent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRow {
    /// Mean accuracy, percent.
    pub accuracy: f32,
    /// Accuracy standard deviation, percent.
    pub accuracy_std: f32,
    /// Mean F1, percent.
    pub f1: f32,
    /// F1 standard deviation, percent.
    pub f1_std: f32,
}

/// The paper's Table I reference values.
pub mod paper_table1 {
    use super::PaperRow;
    /// Bindi [22] (literature reference row).
    pub const BINDI: PaperRow = PaperRow {
        accuracy: 64.63,
        accuracy_std: 16.56,
        f1: 66.67,
        f1_std: 17.31,
    };
    /// Sun et al. [18] (literature reference row).
    pub const SUN: PaperRow = PaperRow {
        accuracy: 79.90,
        accuracy_std: 4.16,
        f1: 78.13,
        f1_std: 6.52,
    };
    /// General model (no clustering).
    pub const GENERAL: PaperRow = PaperRow {
        accuracy: 75.00,
        accuracy_std: 2.76,
        f1: 72.57,
        f1_std: 3.12,
    };
    /// RT CL robustness test.
    pub const RT_CL: PaperRow = PaperRow {
        accuracy: 64.33,
        accuracy_std: 1.80,
        f1: 62.42,
        f1_std: 1.57,
    };
    /// CL validation.
    pub const CL: PaperRow = PaperRow {
        accuracy: 81.90,
        accuracy_std: 3.44,
        f1: 80.41,
        f1_std: 3.58,
    };
    /// RT CLEAR robustness test.
    pub const RT_CLEAR: PaperRow = PaperRow {
        accuracy: 72.68,
        accuracy_std: 5.10,
        f1: 70.98,
        f1_std: 4.26,
    };
    /// CLEAR without fine-tuning.
    pub const CLEAR_WO_FT: PaperRow = PaperRow {
        accuracy: 80.63,
        accuracy_std: 4.22,
        f1: 79.97,
        f1_std: 4.74,
    };
    /// CLEAR with fine-tuning.
    pub const CLEAR_W_FT: PaperRow = PaperRow {
        accuracy: 86.34,
        accuracy_std: 4.04,
        f1: 86.03,
        f1_std: 5.04,
    };
}

/// The paper's Table II reference values.
pub mod paper_table2 {
    use super::PaperRow;
    /// Upper block: GPU baseline (= CLEAR w/o FT).
    pub const GPU: PaperRow = PaperRow {
        accuracy: 80.63,
        accuracy_std: 4.22,
        f1: 79.97,
        f1_std: 4.74,
    };
    /// Upper block: Coral TPU without FT.
    pub const TPU: PaperRow = PaperRow {
        accuracy: 74.17,
        accuracy_std: 3.84,
        f1: 73.57,
        f1_std: 4.44,
    };
    /// Upper block: RT CLEAR on the TPU.
    pub const TPU_RT: PaperRow = PaperRow {
        accuracy: 65.32,
        accuracy_std: 5.42,
        f1: 64.79,
        f1_std: 4.82,
    };
    /// Upper block: Pi + NCS2 without FT.
    pub const NCS2: PaperRow = PaperRow {
        accuracy: 79.03,
        accuracy_std: 4.10,
        f1: 78.48,
        f1_std: 4.76,
    };
    /// Upper block: RT CLEAR on the Pi + NCS2.
    pub const NCS2_RT: PaperRow = PaperRow {
        accuracy: 68.47,
        accuracy_std: 3.25,
        f1: 69.02,
        f1_std: 4.14,
    };
    /// Lower block: fine-tuned accuracy per platform (GPU, TPU, NCS2).
    pub const FT: [PaperRow; 3] = [
        PaperRow {
            accuracy: 86.34,
            accuracy_std: 4.04,
            f1: 86.03,
            f1_std: 5.04,
        },
        PaperRow {
            accuracy: 79.40,
            accuracy_std: 4.51,
            f1: 79.14,
            f1_std: 4.66,
        },
        PaperRow {
            accuracy: 84.49,
            accuracy_std: 4.82,
            f1: 84.07,
            f1_std: 5.16,
        },
    ];
    /// MTC re-training seconds (TPU, Pi+NCS2).
    pub const MTC_RETRAIN_S: [f32; 2] = [32.48, 78.52];
    /// MPC re-training watts (TPU, Pi+NCS2).
    pub const MPC_RETRAIN_W: [f32; 2] = [1.82, 3.78];
    /// MTC test milliseconds (TPU, Pi+NCS2).
    pub const MTC_TEST_MS: [f32; 2] = [47.31, 239.70];
    /// MPC test watts (TPU, Pi+NCS2).
    pub const MPC_TEST_W: [f32; 2] = [1.64, 3.43];
    /// MPC baseline watts (TPU, Pi+NCS2).
    pub const MPC_BASELINE_W: [f32; 2] = [1.28, 2.76];
}

/// Full Table I reproduction results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// "General Model" row.
    pub general: Aggregate,
    /// "RT CL" row.
    pub rt_cl: Aggregate,
    /// "CL validation" row.
    pub cl: Aggregate,
    /// "RT CLEAR" row.
    pub rt_clear: Aggregate,
    /// "CLEAR w/o FT" row.
    pub clear_wo_ft: Aggregate,
    /// "CLEAR w FT" row.
    pub clear_w_ft: Aggregate,
    /// Cold-start assignment accuracy across folds (not in the paper's
    /// table, but the property the CA mechanism claims).
    pub assignment_accuracy: f32,
}

/// Runs everything behind Table I. `progress(stage, done, total)` reports
/// the long-running stages.
pub fn run_table1(
    data: &PreparedCohort,
    config: &ClearConfig,
    mut progress: impl FnMut(&str, usize, usize),
) -> Table1 {
    progress("general model", 0, 1);
    let general = evaluation::general_model(data, config);
    progress("general model", 1, 1);

    progress("cl validation", 0, 1);
    let cl = evaluation::cl_validation(data, config);
    progress("cl validation", 1, 1);

    let n = data.subject_ids().len();
    let clear = evaluation::clear_folds(data, config, false, |done, total| {
        progress("clear validation", done, total);
    });
    debug_assert_eq!(clear.folds.len(), n);

    Table1 {
        general,
        rt_cl: cl.rt,
        cl: cl.cl,
        rt_clear: clear.rt,
        clear_wo_ft: clear.without_ft,
        clear_w_ft: clear.with_ft,
        assignment_accuracy: clear.assignment_accuracy,
    }
}

/// [`run_table1`] with the CLEAR validation folds fanned out across
/// `threads` scoped worker threads (see
/// [`evaluation::clear_folds_parallel`]). Bit-identical to the
/// sequential runner at any thread count; `progress` must be `Send`
/// because completion callbacks arrive from worker threads.
pub fn run_table1_with_threads(
    data: &PreparedCohort,
    config: &ClearConfig,
    threads: usize,
    mut progress: impl FnMut(&str, usize, usize) + Send,
) -> Table1 {
    progress("general model", 0, 1);
    let general = evaluation::general_model(data, config);
    progress("general model", 1, 1);

    progress("cl validation", 0, 1);
    let cl = evaluation::cl_validation(data, config);
    progress("cl validation", 1, 1);

    let n = data.subject_ids().len();
    let clear = evaluation::clear_folds_parallel(data, config, false, threads, |done, total| {
        progress("clear validation", done, total);
    });
    debug_assert_eq!(clear.folds.len(), n);

    Table1 {
        general,
        rt_cl: cl.rt,
        cl: cl.cl,
        rt_clear: clear.rt,
        clear_wo_ft: clear.without_ft,
        clear_w_ft: clear.with_ft,
        assignment_accuracy: clear.assignment_accuracy,
    }
}

fn row(name: &str, agg: &Aggregate, paper: &PaperRow) -> String {
    format!(
        "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   | {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
        name,
        agg.accuracy_mean,
        agg.accuracy_std,
        agg.f1_mean,
        agg.f1_std,
        paper.accuracy,
        paper.accuracy_std,
        paper.f1,
        paper.f1_std
    )
}

impl Table1 {
    /// Renders the table with measured and paper columns side by side.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("TABLE I — WEMAC fear / non-fear (measured | paper)\n");
        out.push_str(&format!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}   | {:>8} {:>8} {:>8} {:>8}\n",
            "Validation", "Acc", "STD", "F1", "STD", "Acc", "STD", "F1", "STD"
        ));
        out.push_str(&"-".repeat(96));
        out.push('\n');
        out.push_str("— previous works (literature constants, not rerun) —\n");
        out.push_str(&format!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}   | {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
            "Bindi [22]",
            "-",
            "-",
            "-",
            "-",
            paper_table1::BINDI.accuracy,
            paper_table1::BINDI.accuracy_std,
            paper_table1::BINDI.f1,
            paper_table1::BINDI.f1_std
        ));
        out.push_str(&format!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}   | {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
            "Sun et al. [18]",
            "-",
            "-",
            "-",
            "-",
            paper_table1::SUN.accuracy,
            paper_table1::SUN.accuracy_std,
            paper_table1::SUN.f1,
            paper_table1::SUN.f1_std
        ));
        out.push_str("— without clustering —\n");
        out.push_str(&row("General Model", &self.general, &paper_table1::GENERAL));
        out.push_str("— clustering and learning (CL) validation —\n");
        out.push_str(&row("RT CL", &self.rt_cl, &paper_table1::RT_CL));
        out.push_str(&row("CL validation", &self.cl, &paper_table1::CL));
        out.push_str("— CLEAR validation —\n");
        out.push_str(&row("RT CLEAR", &self.rt_clear, &paper_table1::RT_CLEAR));
        out.push_str(&row(
            "CLEAR w/o FT",
            &self.clear_wo_ft,
            &paper_table1::CLEAR_WO_FT,
        ));
        out.push_str(&row(
            "CLEAR w FT",
            &self.clear_w_ft,
            &paper_table1::CLEAR_W_FT,
        ));
        out.push_str(&"-".repeat(96));
        out.push('\n');
        out.push_str(&format!(
            "cold-start assignment accuracy: {:.1} % of volunteers assigned to their archetype cluster\n",
            self.assignment_accuracy * 100.0
        ));
        out
    }

    /// Checks the qualitative shape of Table I (who wins, by what order);
    /// returns human-readable violations (empty = shape holds).
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let mut expect = |cond: bool, msg: &str| {
            if !cond {
                v.push(msg.to_string());
            }
        };
        expect(
            self.cl.accuracy_mean > self.general.accuracy_mean,
            "CL validation should beat the General model",
        );
        expect(
            self.rt_cl.accuracy_mean < self.cl.accuracy_mean,
            "RT CL should fall well below CL validation",
        );
        expect(
            self.rt_clear.accuracy_mean < self.clear_wo_ft.accuracy_mean,
            "RT CLEAR should fall below CLEAR w/o FT",
        );
        expect(
            self.clear_w_ft.accuracy_mean > self.clear_wo_ft.accuracy_mean,
            "fine-tuning should improve over CLEAR w/o FT",
        );
        expect(
            self.clear_wo_ft.accuracy_mean > self.general.accuracy_mean,
            "CLEAR w/o FT should beat the General model",
        );
        v
    }
}

/// Full Table II reproduction results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Upper block: per-device without-FT score, ordered as
    /// [`Device::all`] (GPU, TPU, Pi+NCS2).
    pub without_ft: Vec<Aggregate>,
    /// Upper block: per-device robustness test.
    pub rt: Vec<Aggregate>,
    /// Lower block: per-device fine-tuned score.
    pub with_ft: Vec<Aggregate>,
    /// Mean simulated measurements per device.
    pub measurements: Vec<Measurement>,
}

/// Runs the cloud-edge validation behind Table II.
pub fn run_table2(
    data: &PreparedCohort,
    config: &ClearConfig,
    mut progress: impl FnMut(&str, usize, usize),
) -> Table2 {
    let clear = evaluation::clear_folds(data, config, true, |done, total| {
        progress("edge validation", done, total);
    });
    Table2::from_validation(&clear)
}

/// [`run_table2`] with the edge-validation folds fanned out across
/// `threads` scoped worker threads. Bit-identical to the sequential
/// runner at any thread count.
pub fn run_table2_with_threads(
    data: &PreparedCohort,
    config: &ClearConfig,
    threads: usize,
    mut progress: impl FnMut(&str, usize, usize) + Send,
) -> Table2 {
    let clear = evaluation::clear_folds_parallel(data, config, true, threads, |done, total| {
        progress("edge validation", done, total);
    });
    Table2::from_validation(&clear)
}

impl Table2 {
    /// Aggregates a fold set that was run with edge evaluation enabled.
    ///
    /// # Panics
    ///
    /// Panics if any fold lacks edge results.
    pub fn from_validation(clear: &ClearValidation) -> Self {
        let devices = Device::all().len();
        let mut without_ft = Vec::new();
        let mut rt = Vec::new();
        let mut with_ft = Vec::new();
        let mut measurements = Vec::new();
        for d in 0..devices {
            let wo: Vec<_> = clear
                .folds
                .iter()
                .map(|f| f.edge.as_ref().expect("edge results missing").without_ft[d])
                .collect();
            let r: Vec<_> = clear
                .folds
                .iter()
                .map(|f| f.edge.as_ref().expect("edge results missing").rt[d])
                .collect();
            let w: Vec<_> = clear
                .folds
                .iter()
                .map(|f| f.edge.as_ref().expect("edge results missing").with_ft[d])
                .collect();
            without_ft.push(Aggregate::from_scores(&wo));
            rt.push(Aggregate::from_scores(&r));
            with_ft.push(Aggregate::from_scores(&w));
            let n = clear.folds.len() as f32;
            let sum = |f: &dyn Fn(&Measurement) -> f32| -> f32 {
                clear
                    .folds
                    .iter()
                    .map(|fold| {
                        f(&fold
                            .edge
                            .as_ref()
                            .expect("edge results missing")
                            .measurements[d])
                    })
                    .sum::<f32>()
                    / n
            };
            measurements.push(Measurement {
                mtc_retraining_s: sum(&|m| m.mtc_retraining_s),
                mpc_retraining_w: sum(&|m| m.mpc_retraining_w),
                mtc_test_ms: sum(&|m| m.mtc_test_ms),
                mpc_test_w: sum(&|m| m.mpc_test_w),
                mpc_baseline_w: sum(&|m| m.mpc_baseline_w),
            });
        }
        Self {
            without_ft,
            rt,
            with_ft,
            measurements,
        }
    }

    /// Renders the table with measured and paper columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("TABLE II — cloud-edge validation (measured | paper)\n");
        out.push_str("— upper block: CLEAR w/o FT per platform —\n");
        out.push_str(&format!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}   | {:>8} {:>8} {:>8} {:>8}\n",
            "Platform", "Acc", "STD", "F1", "STD", "Acc", "STD", "F1", "STD"
        ));
        out.push_str(&row(
            "GPU (baseline)",
            &self.without_ft[0],
            &paper_table2::GPU,
        ));
        out.push_str(&row("Coral TPU", &self.without_ft[1], &paper_table2::TPU));
        out.push_str(&row("  RT CLEAR", &self.rt[1], &paper_table2::TPU_RT));
        out.push_str(&row("Pi + NCS2", &self.without_ft[2], &paper_table2::NCS2));
        out.push_str(&row("  RT CLEAR", &self.rt[2], &paper_table2::NCS2_RT));
        out.push_str("— lower block: after on-device fine-tuning —\n");
        for (i, name) in ["GPU", "Coral TPU", "Pi + NCS2"].iter().enumerate() {
            out.push_str(&row(name, &self.with_ft[i], &paper_table2::FT[i]));
        }
        out.push_str("— measurements (mean over folds; measured | paper) —\n");
        let dev = |i: usize| -> &Measurement { &self.measurements[i] };
        out.push_str(&format!(
            "{:<22} {:>10.2} {:>10.2}   | {:>8.2} {:>8.2}  s\n",
            "MTC Re-training",
            dev(1).mtc_retraining_s,
            dev(2).mtc_retraining_s,
            paper_table2::MTC_RETRAIN_S[0],
            paper_table2::MTC_RETRAIN_S[1]
        ));
        out.push_str(&format!(
            "{:<22} {:>10.2} {:>10.2}   | {:>8.2} {:>8.2}  W\n",
            "MPC Re-training",
            dev(1).mpc_retraining_w,
            dev(2).mpc_retraining_w,
            paper_table2::MPC_RETRAIN_W[0],
            paper_table2::MPC_RETRAIN_W[1]
        ));
        out.push_str(&format!(
            "{:<22} {:>10.2} {:>10.2}   | {:>8.2} {:>8.2}  ms\n",
            "MTC Test",
            dev(1).mtc_test_ms,
            dev(2).mtc_test_ms,
            paper_table2::MTC_TEST_MS[0],
            paper_table2::MTC_TEST_MS[1]
        ));
        out.push_str(&format!(
            "{:<22} {:>10.2} {:>10.2}   | {:>8.2} {:>8.2}  W\n",
            "MPC Test",
            dev(1).mpc_test_w,
            dev(2).mpc_test_w,
            paper_table2::MPC_TEST_W[0],
            paper_table2::MPC_TEST_W[1]
        ));
        out.push_str(&format!(
            "{:<22} {:>10.2} {:>10.2}   | {:>8.2} {:>8.2}  W\n",
            "MPC Baseline",
            dev(1).mpc_baseline_w,
            dev(2).mpc_baseline_w,
            paper_table2::MPC_BASELINE_W[0],
            paper_table2::MPC_BASELINE_W[1]
        ));
        out
    }

    /// Qualitative shape checks for Table II (empty = shape holds).
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let mut expect = |cond: bool, msg: &str| {
            if !cond {
                v.push(msg.to_string());
            }
        };
        expect(
            self.without_ft[1].accuracy_mean <= self.without_ft[0].accuracy_mean + 0.5,
            "int8 TPU should not beat the fp32 GPU baseline",
        );
        expect(
            self.without_ft[2].accuracy_mean >= self.without_ft[1].accuracy_mean - 0.5,
            "fp16 NCS2 should sit above the int8 TPU",
        );
        for d in 1..3 {
            expect(
                self.rt[d].accuracy_mean < self.without_ft[d].accuracy_mean,
                "RT CLEAR should fall below matched-cluster accuracy on device",
            );
            expect(
                self.with_ft[d].accuracy_mean > self.without_ft[d].accuracy_mean,
                "on-device fine-tuning should improve accuracy",
            );
        }
        expect(
            self.measurements[1].mtc_test_ms < self.measurements[2].mtc_test_ms,
            "TPU inference should be faster than Pi+NCS2",
        );
        expect(
            self.measurements[1].mtc_retraining_s < self.measurements[2].mtc_retraining_s,
            "TPU re-training should be faster than Pi+NCS2",
        );
        expect(
            self.measurements[1].mpc_baseline_w < self.measurements[2].mpc_baseline_w,
            "TPU should idle below Pi+NCS2",
        );
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_nn::metrics::FoldScore;

    fn agg(acc: f32) -> Aggregate {
        Aggregate::from_scores(&[FoldScore {
            accuracy: acc,
            f1: acc - 0.01,
        }])
    }

    #[test]
    fn table1_shape_checks_fire_correctly() {
        let good = Table1 {
            general: agg(0.75),
            rt_cl: agg(0.64),
            cl: agg(0.82),
            rt_clear: agg(0.72),
            clear_wo_ft: agg(0.80),
            clear_w_ft: agg(0.86),
            assignment_accuracy: 0.9,
        };
        assert!(good.shape_violations().is_empty());
        let bad = Table1 {
            general: agg(0.9),
            ..good.clone()
        };
        assert!(!bad.shape_violations().is_empty());
    }

    #[test]
    fn table1_render_contains_all_rows() {
        let t = Table1 {
            general: agg(0.75),
            rt_cl: agg(0.64),
            cl: agg(0.82),
            rt_clear: agg(0.72),
            clear_wo_ft: agg(0.80),
            clear_w_ft: agg(0.86),
            assignment_accuracy: 0.9,
        };
        let text = t.render();
        for needle in [
            "Bindi [22]",
            "Sun et al. [18]",
            "General Model",
            "RT CL",
            "CL validation",
            "RT CLEAR",
            "CLEAR w/o FT",
            "CLEAR w FT",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn paper_constants_match_published_table() {
        assert_eq!(paper_table1::CLEAR_W_FT.accuracy, 86.34);
        assert_eq!(paper_table1::GENERAL.accuracy, 75.00);
        assert_eq!(paper_table2::MTC_TEST_MS, [47.31, 239.70]);
        assert_eq!(paper_table2::FT[1].accuracy, 79.40);
    }
}
