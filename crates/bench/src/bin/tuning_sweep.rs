//! Fine-tuning hyper-parameter sweep (development diagnostic).
//!
//! Runs a handful of CLEAR folds, fits the cloud once per fold, then
//! fine-tunes the assigned checkpoint under several configurations —
//! trainable tail, learning rate, L2-SP anchor — and compares each against
//! the *same* held-out test set. This is the tool that selected the
//! committed fine-tuning configuration; it stays in the tree so future
//! changes to the simulator can be re-tuned in minutes.

use clear_bench::config_from_args;
use clear_core::dataset::PreparedCohort;
use clear_core::pipeline::CloudTraining;
use clear_nn::optim::OptimizerConfig;
use clear_nn::train::{self, TrainConfig};
use clear_sim::SubjectId;

fn main() {
    let config = config_from_args();
    eprintln!("preparing cohort...");
    let data = PreparedCohort::prepare(&config);
    let subjects = data.subject_ids();
    let fold_count = 12.min(subjects.len());

    // (label, tail, lr, epochs, batch, l2_sp)
    let candidates: Vec<(&str, Option<usize>, f32, usize, usize, Option<f32>)> = vec![
        ("head lr 3e-3 sp.01", Some(1), 3e-3, 25, 2, Some(0.01)),
        ("head lr 5e-3 sp.02", Some(1), 5e-3, 25, 2, Some(0.02)),
        ("lstm+head 8e-4 sp.02", Some(2), 8e-4, 15, 4, Some(0.02)),
        ("lstm+head 2e-3 sp.05", Some(2), 2e-3, 25, 2, Some(0.05)),
        ("lstm+head 8e-4 free", Some(2), 8e-4, 15, 4, None),
        ("all 4e-4 sp.02", None, 4e-4, 15, 4, Some(0.02)),
    ];

    let mut base_sum = 0.0f32;
    let mut sums = vec![0.0f32; candidates.len()];
    for (fold, &vx) in subjects.iter().take(fold_count).enumerate() {
        let initial: Vec<SubjectId> = subjects.iter().copied().filter(|&s| s != vx).collect();
        let cloud = CloudTraining::fit(&data, &initial, &config);
        let indices = data.indices_of(vx);
        let ca_n = ((indices.len() as f32 * config.ca_fraction).ceil() as usize).max(1);
        let assigned = cloud.assign_user(&data, &indices[..ca_n]);
        let rest = &indices[ca_n..];
        // Stratified FT budget: interleave labels.
        let fear: Vec<usize> = rest
            .iter()
            .copied()
            .filter(|&i| data.map_and_label(i).1 == clear_sim::Emotion::Fear)
            .collect();
        let calm: Vec<usize> = rest
            .iter()
            .copied()
            .filter(|&i| data.map_and_label(i).1 == clear_sim::Emotion::NonFear)
            .collect();
        let ft_n = ((indices.len() as f32 * config.ft_fraction).ceil() as usize).max(2);
        let mut ft_idx = Vec::new();
        for i in 0..ft_n {
            let src = if i % 2 == 0 { &fear } else { &calm };
            if let Some(&idx) = src.get(i / 2) {
                ft_idx.push(idx);
            }
        }
        let test_idx: Vec<usize> = rest
            .iter()
            .copied()
            .filter(|i| !ft_idx.contains(i))
            .collect();

        let base = cloud.evaluate(&data, assigned, &test_idx).accuracy;
        base_sum += base;
        let ft_ds = cloud.user_dataset(&data, &ft_idx);
        let test_ds = cloud.user_dataset(&data, &test_idx);
        for (ci, (_, tail, lr, epochs, batch, sp)) in candidates.iter().enumerate() {
            let tc = TrainConfig {
                epochs: *epochs,
                batch_size: *batch,
                optimizer: OptimizerConfig::adam(*lr),
                seed: config.seed.wrapping_add(fold as u64),
                patience: 0,
                trainable_tail: *tail,
                l2_sp: *sp,
            };
            let mut net = cloud.model(assigned).clone();
            train::train(&mut net, &ft_ds, None, &tc);
            sums[ci] += train::evaluate(&net, &test_ds).accuracy;
        }
        eprint!("\rfold {}/{fold_count}   ", fold + 1);
    }
    eprintln!();
    let n = fold_count as f32;
    println!("FINE-TUNING SWEEP ({fold_count} folds, same test set per fold)\n");
    println!("{:<24} {:>10}", "configuration", "acc %");
    println!("{:<24} {:>9.1}%", "no fine-tuning", base_sum / n * 100.0);
    for (ci, (label, ..)) in candidates.iter().enumerate() {
        println!("{:<24} {:>9.1}%", label, sums[ci] / n * 100.0);
    }
}
