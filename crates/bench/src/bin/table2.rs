//! Regenerates Table II: cloud-edge validation — per-platform accuracy
//! (GPU / Coral TPU / Pi + NCS2, with robustness tests), on-device
//! fine-tuning, and the simulated MTC/MPC measurement block.

use clear_bench::{cli_from_args, maybe_write_json, print_progress};
use clear_core::dataset::PreparedCohort;
use clear_core::experiments::run_table2;

fn main() {
    let cli = cli_from_args();
    let config = cli.config.clone();
    eprintln!(
        "table2: {} subjects, edge devices: GPU, Coral TPU, Pi + NCS2",
        config.cohort.total_subjects()
    );
    let t0 = std::time::Instant::now();
    eprintln!("extracting feature maps...");
    let data = PreparedCohort::prepare(&config);
    let table = run_table2(&data, &config, print_progress);
    println!("{}", table.render());
    maybe_write_json(&cli, &table);
    let violations = table.shape_violations();
    if violations.is_empty() {
        println!("shape check: PASS (all qualitative orderings match the paper)");
    } else {
        println!("shape check: {} violation(s)", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
    }
    println!("total wall clock: {:.1?}", t0.elapsed());
}
