//! Heart-rate-variability (HRV) metrics from inter-beat intervals.
//!
//! The 84 BVP features of the CLEAR extractor are dominated by HRV measures
//! computed from the inter-beat-interval (IBI) series: time-domain (SDNN,
//! RMSSD, pNN50…), geometric (Poincaré SD1/SD2), and frequency-domain
//! (LF/HF band powers of the interpolated IBI tachogram).

use crate::psd::{welch, WelchConfig};
use crate::resample::interp_uniform;
use crate::DspError;

/// Time-domain HRV summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeDomainHrv {
    /// Mean inter-beat interval, seconds.
    pub mean_ibi: f32,
    /// Mean heart rate, beats per minute.
    pub mean_hr: f32,
    /// Standard deviation of heart rate (bpm).
    pub std_hr: f32,
    /// Standard deviation of IBIs (SDNN), seconds.
    pub sdnn: f32,
    /// Root mean square of successive IBI differences (RMSSD), seconds.
    pub rmssd: f32,
    /// Standard deviation of successive differences (SDSD), seconds.
    pub sdsd: f32,
    /// Fraction of successive differences exceeding 50 ms (pNN50) in `[0,1]`.
    pub pnn50: f32,
    /// Fraction of successive differences exceeding 20 ms (pNN20) in `[0,1]`.
    pub pnn20: f32,
}

/// Computes time-domain HRV from an IBI series (seconds).
///
/// # Errors
///
/// Returns [`DspError::BadLength`] when fewer than 2 intervals are given
/// (successive differences are undefined).
pub fn time_domain(ibis: &[f32]) -> Result<TimeDomainHrv, DspError> {
    if ibis.len() < 2 {
        return Err(DspError::BadLength {
            expected: "at least 2 inter-beat intervals",
            actual: ibis.len(),
        });
    }
    let mean_ibi = crate::stats::mean(ibis);
    let hrs: Vec<f32> = ibis.iter().map(|&ibi| 60.0 / ibi.max(1e-3)).collect();
    let diffs: Vec<f32> = ibis.windows(2).map(|w| w[1] - w[0]).collect();
    let rmssd = crate::stats::rms(&diffs);
    let nn50 = diffs.iter().filter(|d| d.abs() > 0.050).count();
    let nn20 = diffs.iter().filter(|d| d.abs() > 0.020).count();
    Ok(TimeDomainHrv {
        mean_ibi,
        mean_hr: crate::stats::mean(&hrs),
        std_hr: crate::stats::std_dev(&hrs),
        sdnn: crate::stats::std_dev(ibis),
        rmssd,
        sdsd: crate::stats::std_dev(&diffs),
        pnn50: nn50 as f32 / diffs.len() as f32,
        pnn20: nn20 as f32 / diffs.len() as f32,
    })
}

/// Poincaré-plot geometry of an IBI series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Poincare {
    /// Short-term variability axis (width of the cloud).
    pub sd1: f32,
    /// Long-term variability axis (length of the cloud).
    pub sd2: f32,
    /// `sd1 / sd2` balance; `0.0` when SD2 vanishes.
    pub ratio: f32,
}

/// Computes Poincaré SD1/SD2 from an IBI series.
///
/// # Errors
///
/// Returns [`DspError::BadLength`] when fewer than 2 intervals are given.
pub fn poincare(ibis: &[f32]) -> Result<Poincare, DspError> {
    if ibis.len() < 2 {
        return Err(DspError::BadLength {
            expected: "at least 2 inter-beat intervals",
            actual: ibis.len(),
        });
    }
    // SD1² = var((x_{n+1} - x_n)/√2), SD2² = var((x_{n+1} + x_n)/√2).
    let d: Vec<f32> = ibis
        .windows(2)
        .map(|w| (w[1] - w[0]) / std::f32::consts::SQRT_2)
        .collect();
    let s: Vec<f32> = ibis
        .windows(2)
        .map(|w| (w[1] + w[0]) / std::f32::consts::SQRT_2)
        .collect();
    let sd1 = crate::stats::std_dev(&d);
    let sd2 = crate::stats::std_dev(&s);
    Ok(Poincare {
        sd1,
        sd2,
        ratio: if sd2 > f32::EPSILON { sd1 / sd2 } else { 0.0 },
    })
}

/// Frequency-domain HRV summary (powers in s²; standard short-term bands).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrequencyDomainHrv {
    /// Very-low-frequency power, 0.0033–0.04 Hz.
    pub vlf_power: f32,
    /// Low-frequency power, 0.04–0.15 Hz.
    pub lf_power: f32,
    /// High-frequency power, 0.15–0.4 Hz.
    pub hf_power: f32,
    /// `lf / hf` sympathovagal balance; `0.0` when HF vanishes.
    pub lf_hf_ratio: f32,
    /// Normalized LF: `lf / (lf + hf)`.
    pub lf_normalized: f32,
}

/// Computes frequency-domain HRV by resampling the IBI tachogram to a
/// uniform 4 Hz grid and Welch-estimating its PSD.
///
/// `beat_times` are the cumulative beat timestamps (seconds) matching the
/// IBI series (`beat_times.len() == ibis.len()`, timestamp of each interval's
/// *end* beat).
///
/// # Errors
///
/// Returns [`DspError::BadLength`] when fewer than 4 intervals are given
/// or the lengths mismatch.
pub fn frequency_domain(beat_times: &[f32], ibis: &[f32]) -> Result<FrequencyDomainHrv, DspError> {
    if ibis.len() < 4 {
        return Err(DspError::BadLength {
            expected: "at least 4 inter-beat intervals",
            actual: ibis.len(),
        });
    }
    if beat_times.len() != ibis.len() {
        return Err(DspError::BadLength {
            expected: "beat_times matching ibis length",
            actual: beat_times.len(),
        });
    }
    const RESAMPLE_HZ: f32 = 4.0;
    let t0 = beat_times[0];
    let t1 = *beat_times.last().unwrap();
    let duration = (t1 - t0).max(1.0 / RESAMPLE_HZ);
    let n = ((duration * RESAMPLE_HZ) as usize).max(8);
    let tachogram = interp_uniform(beat_times, ibis, t0, t1, n)?;
    let seg = (n / 2).clamp(8, 256);
    let psd = welch(&tachogram, RESAMPLE_HZ, &WelchConfig::with_segment_len(seg))?;
    let vlf = psd.band_power(0.0033, 0.04);
    let lf = psd.band_power(0.04, 0.15);
    let hf = psd.band_power(0.15, 0.4);
    Ok(FrequencyDomainHrv {
        vlf_power: vlf,
        lf_power: lf,
        hf_power: hf,
        lf_hf_ratio: if hf > f32::EPSILON { lf / hf } else { 0.0 },
        lf_normalized: if lf + hf > f32::EPSILON {
            lf / (lf + hf)
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_domain_of_steady_rhythm() {
        let ibis = vec![0.8f32; 50]; // 75 bpm, no variability
        let td = time_domain(&ibis).unwrap();
        assert!((td.mean_hr - 75.0).abs() < 0.1);
        assert!(td.sdnn < 1e-6);
        assert!(td.rmssd < 1e-6);
        assert_eq!(td.pnn50, 0.0);
    }

    #[test]
    fn time_domain_alternans_has_high_rmssd() {
        let ibis: Vec<f32> = (0..60)
            .map(|i| if i % 2 == 0 { 0.7 } else { 0.9 })
            .collect();
        let td = time_domain(&ibis).unwrap();
        assert!((td.rmssd - 0.2).abs() < 1e-3);
        assert_eq!(td.pnn50, 1.0);
        assert_eq!(td.pnn20, 1.0);
        assert!((td.mean_ibi - 0.8).abs() < 1e-3);
    }

    #[test]
    fn time_domain_needs_two_intervals() {
        assert!(time_domain(&[0.8]).is_err());
        assert!(time_domain(&[]).is_err());
    }

    #[test]
    fn poincare_alternans_is_sd1_dominant() {
        // Beat-to-beat alternation → large SD1 relative to SD2.
        let alternans: Vec<f32> = (0..40)
            .map(|i| if i % 2 == 0 { 0.7 } else { 0.9 })
            .collect();
        let p = poincare(&alternans).unwrap();
        assert!(p.sd1 > 5.0 * p.sd2.max(1e-6), "sd1 {} sd2 {}", p.sd1, p.sd2);

        // Slow monotonic drift → SD2 dominant.
        let drift: Vec<f32> = (0..40).map(|i| 0.7 + 0.005 * i as f32).collect();
        let p2 = poincare(&drift).unwrap();
        assert!(p2.sd2 > 5.0 * p2.sd1.max(1e-6));
        assert!(p2.ratio < 0.25);
    }

    #[test]
    fn frequency_domain_separates_lf_and_hf_modulation() {
        // Build beat times whose IBIs oscillate at a known modulation rate.
        let make = |mod_hz: f32| -> (Vec<f32>, Vec<f32>) {
            let mut t = 0.0f32;
            let mut times = Vec::new();
            let mut ibis = Vec::new();
            for _ in 0..400 {
                let ibi = 0.8 + 0.05 * (2.0 * std::f32::consts::PI * mod_hz * t).sin();
                t += ibi;
                times.push(t);
                ibis.push(ibi);
            }
            (times, ibis)
        };
        let (t_lf, ibi_lf) = make(0.1); // inside the LF band
        let (t_hf, ibi_hf) = make(0.3); // inside the HF band
        let lf = frequency_domain(&t_lf, &ibi_lf).unwrap();
        let hf = frequency_domain(&t_hf, &ibi_hf).unwrap();
        assert!(lf.lf_power > lf.hf_power, "{lf:?}");
        assert!(hf.hf_power > hf.lf_power, "{hf:?}");
        assert!(lf.lf_hf_ratio > 1.0);
        assert!(hf.lf_hf_ratio < 1.0);
        assert!(lf.lf_normalized > 0.5 && hf.lf_normalized < 0.5);
    }

    #[test]
    fn frequency_domain_validates_input() {
        assert!(frequency_domain(&[1.0, 2.0], &[0.8, 0.8]).is_err());
        assert!(frequency_domain(&[1.0; 5], &[0.8; 4]).is_err());
    }
}
