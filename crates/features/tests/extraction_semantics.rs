//! Semantic tests of the 123-feature extractor: controlled manipulations
//! of the input signals must move the right features in the right
//! direction. These pin the *meaning* of the catalog, not just its shape.

use clear_features::catalog::index_of;
use clear_features::extract_window;
use clear_sim::SignalConfig;

fn sig() -> SignalConfig {
    SignalConfig::default()
}

/// A clean BVP pulse train at the given heart rate.
fn bvp_at(bpm: f32, secs: f32, fs: f32) -> Vec<f32> {
    let n = (secs * fs) as usize;
    let period = 60.0 / bpm;
    (0..n)
        .map(|i| {
            let t = i as f32 / fs;
            let phase = (t % period) / period;
            (-(phase * 8.0)).exp() + 0.2 * (-((phase - 0.4) * 12.0).powi(2)).exp()
        })
        .collect()
}

/// A GSR trace with `events` SCRs on a given tonic level.
fn gsr_with(events: usize, tonic: f32, secs: f32, fs: f32) -> Vec<f32> {
    let n = (secs * fs) as usize;
    let mut out = vec![tonic; n];
    for e in 0..events {
        let start = ((e as f32 + 0.5) / events as f32 * secs * fs) as usize;
        for i in 0..(10.0 * fs) as usize {
            if start + i < n {
                let t = i as f32 / fs;
                out[start + i] += 0.4 * ((-(t / 3.0)).exp() - (-(t / 0.6)).exp()) * 1.5;
            }
        }
    }
    out
}

fn skt_with_slope(slope_per_min: f32, base: f32, secs: f32, fs: f32) -> Vec<f32> {
    let n = (secs * fs) as usize;
    (0..n)
        .map(|i| base + slope_per_min * (i as f32 / fs) / 60.0)
        .collect()
}

fn feat(v: &[f32], name: &str) -> f32 {
    v[index_of(name).unwrap_or_else(|| panic!("unknown feature {name}"))]
}

#[test]
fn heart_rate_features_track_generator_bpm() {
    let s = sig();
    let gsr = gsr_with(2, 3.0, 12.0, s.fs_gsr);
    let skt = skt_with_slope(0.0, 33.0, 12.0, s.fs_skt);
    for bpm in [60.0f32, 75.0, 95.0] {
        let bvp = bvp_at(bpm, 12.0, s.fs_bvp);
        let v = extract_window(&bvp, &gsr, &skt, &s);
        let hr = feat(&v, "hrv_mean_hr");
        assert!(
            (hr - bpm).abs() < 5.0,
            "generator {bpm} bpm, extracted {hr}"
        );
        // Beat count consistent with duration × rate.
        let beats = feat(&v, "bvp_beat_count");
        assert!((beats - bpm / 60.0 * 12.0).abs() <= 2.0);
    }
}

#[test]
fn scr_count_tracks_injected_events() {
    let s = sig();
    let bvp = bvp_at(70.0, 12.0, s.fs_bvp);
    let skt = skt_with_slope(0.0, 33.0, 12.0, s.fs_skt);
    let quiet = extract_window(&bvp, &gsr_with(0, 3.0, 12.0, s.fs_gsr), &skt, &s);
    let busy = extract_window(&bvp, &gsr_with(3, 3.0, 12.0, s.fs_gsr), &skt, &s);
    assert!(feat(&quiet, "gsr_scr_count") <= 1.0);
    assert!(
        feat(&busy, "gsr_scr_count") >= 2.0,
        "busy count {}",
        feat(&busy, "gsr_scr_count")
    );
    assert!(feat(&busy, "gsr_scr_amp_sum") > feat(&quiet, "gsr_scr_amp_sum"));
    assert!(feat(&busy, "gsr_phasic_energy") > feat(&quiet, "gsr_phasic_energy"));
}

#[test]
fn tonic_level_lands_in_gsr_tonic_mean() {
    let s = sig();
    let bvp = bvp_at(70.0, 12.0, s.fs_bvp);
    let skt = skt_with_slope(0.0, 33.0, 12.0, s.fs_skt);
    for tonic in [2.0f32, 5.0, 8.0] {
        let v = extract_window(&bvp, &gsr_with(1, tonic, 12.0, s.fs_gsr), &skt, &s);
        assert!(
            (feat(&v, "gsr_tonic_mean") - tonic).abs() < 0.5,
            "tonic {tonic} extracted {}",
            feat(&v, "gsr_tonic_mean")
        );
    }
}

#[test]
fn skt_slope_signs_are_preserved() {
    let s = sig();
    let bvp = bvp_at(70.0, 12.0, s.fs_bvp);
    let gsr = gsr_with(1, 3.0, 12.0, s.fs_gsr);
    let cooling = extract_window(&bvp, &gsr, &skt_with_slope(-0.5, 34.0, 12.0, s.fs_skt), &s);
    let warming = extract_window(&bvp, &gsr, &skt_with_slope(0.5, 32.0, 12.0, s.fs_skt), &s);
    assert!(feat(&cooling, "skt_slope") < 0.0);
    assert!(feat(&warming, "skt_slope") > 0.0);
    assert!((feat(&cooling, "skt_mean") - 34.0).abs() < 0.2);
    assert!((feat(&warming, "skt_min") - 32.0).abs() < 0.2);
}

#[test]
fn hrv_variability_features_separate_steady_from_variable_rhythm() {
    let s = sig();
    let gsr = gsr_with(1, 3.0, 12.0, s.fs_gsr);
    let skt = skt_with_slope(0.0, 33.0, 12.0, s.fs_skt);
    // Steady rhythm.
    let steady = bvp_at(72.0, 12.0, s.fs_bvp);
    // Modulated rhythm: alternate the instantaneous period.
    let fsb = s.fs_bvp;
    let n = (12.0 * fsb) as usize;
    let mut variable = vec![0.0f32; n];
    let mut t_beat = 0.0f32;
    let mut k = 0;
    while t_beat < 12.0 {
        let start = (t_beat * fsb) as usize;
        for i in start..(start + (1.0 * fsb) as usize).min(n) {
            let dt = i as f32 / fsb - t_beat;
            variable[i] += (-(dt * 8.0)).exp();
        }
        t_beat += if k % 2 == 0 { 0.70 } else { 0.95 };
        k += 1;
    }
    let v_steady = extract_window(&steady, &gsr, &skt, &s);
    let v_var = extract_window(&variable, &gsr, &skt, &s);
    assert!(feat(&v_var, "hrv_rmssd") > 3.0 * feat(&v_steady, "hrv_rmssd").max(1e-4));
    assert!(feat(&v_var, "hrv_sdnn") > feat(&v_steady, "hrv_sdnn"));
    assert!(feat(&v_var, "poincare_sd1") > feat(&v_steady, "poincare_sd1"));
    assert!(feat(&v_var, "hrv_pnn50") > feat(&v_steady, "hrv_pnn50"));
}

#[test]
fn pulse_amplitude_features_track_scaling() {
    let s = sig();
    let gsr = gsr_with(1, 3.0, 12.0, s.fs_gsr);
    let skt = skt_with_slope(0.0, 33.0, 12.0, s.fs_skt);
    let full = bvp_at(70.0, 12.0, s.fs_bvp);
    let damped: Vec<f32> = full.iter().map(|v| v * 0.5).collect();
    let v_full = extract_window(&full, &gsr, &skt, &s);
    let v_damp = extract_window(&damped, &gsr, &skt, &s);
    assert!(feat(&v_damp, "bvp_peak_mean") < 0.7 * feat(&v_full, "bvp_peak_mean"));
    assert!(feat(&v_damp, "bvp_std") < 0.7 * feat(&v_full, "bvp_std"));
    // Heart rate is amplitude-invariant.
    assert!((feat(&v_damp, "hrv_mean_hr") - feat(&v_full, "hrv_mean_hr")).abs() < 2.0);
}

#[test]
fn cardiac_band_power_peaks_at_the_pulse_fundamental() {
    let s = sig();
    let gsr = gsr_with(1, 3.0, 12.0, s.fs_gsr);
    let skt = skt_with_slope(0.0, 33.0, 12.0, s.fs_skt);
    // 72 bpm = 1.2 Hz fundamental → band 1–1.5 Hz should dominate 3–4 Hz.
    let bvp = bvp_at(72.0, 12.0, s.fs_bvp);
    let v = extract_window(&bvp, &gsr, &skt, &s);
    assert!(feat(&v, "bvp_bp_1_1p5") > feat(&v, "bvp_bp_3_4"));
    let peak = feat(&v, "bvp_peak_freq");
    assert!((0.8..=2.6).contains(&peak), "peak frequency {peak}");
}
