//! Periodic full-state checkpoints of the serving engine.
//!
//! A snapshot captures everything replay would otherwise reconstruct —
//! the tenant registry (cluster assignment, baseline, quarantine count,
//! fork generation, personalized [`WeightDelta`]) and the deferred
//! onboarding buffers — together with the LSN of the last WAL record it
//! covers. Publication is atomic (tmp file + rename via
//! [`Storage::write_atomic`]) and the artifact is sealed in a
//! checksummed [`crate::envelope`], so a reader sees either the previous
//! complete snapshot or the new complete snapshot; a half-written or
//! bit-rotted file is a typed [`DurableError::CorruptArtifact`]. Only
//! after the snapshot is durable does the caller truncate the WAL.
//!
//! Tenants and pending buffers are stored sorted by user id, so the same
//! engine state always serializes to the same bytes regardless of hash
//! map iteration order — snapshots are diffable and content-addressable.

use crate::envelope;
use crate::storage::Storage;
use crate::DurableError;
use clear_features::FeatureMap;
use clear_nn::delta::WeightDelta;
use serde::{Deserialize, Serialize};

/// Blob name of the snapshot within a [`Storage`] root.
pub const SNAPSHOT_FILE: &str = "snapshot.clear";

/// Envelope kind tag of sealed snapshots.
const KIND: &str = "snapshot";

/// Durable state of one onboarded user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantRecord {
    /// User identifier.
    pub user: String,
    /// Assigned cluster index.
    pub cluster: usize,
    /// Per-user physiological baseline vector.
    pub baseline: Vec<f32>,
    /// Windows quarantined for this user so far.
    pub quarantined: u64,
    /// Fork-generation stamp (cache-coherence token for personalized
    /// weights).
    pub generation: u64,
    /// Personalized weights as a delta from the cluster model, if the
    /// user has adopted a personalization round.
    pub delta: Option<WeightDelta>,
}

/// Durable state of one cluster serving an adopted (non-base) model
/// generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdoptedClusterRecord {
    /// Cluster index.
    pub cluster: usize,
    /// Engine-wide generation stamp of the adopted model.
    pub generation: u64,
    /// Adopted weights as a delta from the cluster's base bundle model.
    pub delta: WeightDelta,
}

/// Full engine state at a WAL horizon: recovery seeds from this and
/// replays only WAL records with `lsn > last_lsn`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// LSN of the last WAL record this snapshot covers (0 = none).
    pub last_lsn: u64,
    /// Every onboarded user, sorted by user id.
    pub tenants: Vec<TenantRecord>,
    /// Deferred-onboarding window buffers, sorted by user id.
    pub pending: Vec<(String, Vec<FeatureMap>)>,
    /// Clusters serving an adopted model generation, sorted by cluster
    /// index. Absent in pre-lifecycle snapshots (defaults to empty:
    /// every cluster serves its base bundle model).
    #[serde(default)]
    pub adopted: Vec<AdoptedClusterRecord>,
}

impl EngineSnapshot {
    /// Sorts tenants and pending buffers by user id (and adopted
    /// clusters by index) so identical state serializes to identical
    /// bytes.
    pub fn normalize(&mut self) {
        self.tenants.sort_by(|a, b| a.user.cmp(&b.user));
        self.pending.sort_by(|a, b| a.0.cmp(&b.0));
        self.adopted.sort_by_key(|a| a.cluster);
    }

    /// Seals and atomically publishes this snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Io`] on storage failure (the previous
    /// snapshot, if any, survives intact).
    pub fn save(&self, storage: &dyn Storage) -> Result<(), DurableError> {
        let _span = clear_obs::span(clear_obs::Stage::SnapshotWrite);
        let json = serde_json::to_string(self).map_err(|e| DurableError::Io(e.to_string()))?;
        let sealed = envelope::seal_str(KIND, &json);
        storage.write_atomic(SNAPSHOT_FILE, sealed.as_bytes())?;
        clear_obs::counter_add(clear_obs::counters::DURABLE_SNAPSHOTS, 1);
        clear_obs::size_record(clear_obs::SNAPSHOT_BYTES_HISTOGRAM, sealed.len() as u64);
        Ok(())
    }

    /// Per-entry state fingerprints for anti-entropy comparison: one
    /// `(key, checksum)` pair per tenant (`user`), deferred onboarding
    /// buffer (`pending:user`) and adopted cluster model (`cluster:N`),
    /// sorted by key. The checksum is the sealed-envelope checksum
    /// ([`envelope::fingerprint`]) of the entry's canonical JSON, so two
    /// replicas report equal fingerprints for a key iff their durable
    /// state for that key is byte-identical — the comparison `clear-
    /// cluster`'s scrub pass exchanges instead of whole snapshots.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Io`] when an entry fails to serialize
    /// (non-finite floats cannot occur in committed state, so this is
    /// unreachable in practice).
    pub fn user_fingerprints(&self) -> Result<Vec<(String, u32)>, DurableError> {
        let io = |e: serde_json::Error| DurableError::Io(e.to_string());
        let mut out = Vec::with_capacity(self.tenants.len() + self.pending.len());
        for t in &self.tenants {
            let payload = serde_json::to_vec(t).map_err(io)?;
            out.push((t.user.clone(), envelope::fingerprint("tenant", &payload)));
        }
        for (user, maps) in &self.pending {
            let payload = serde_json::to_vec(maps).map_err(io)?;
            out.push((
                format!("pending:{user}"),
                envelope::fingerprint("pending", &payload),
            ));
        }
        for a in &self.adopted {
            let payload = serde_json::to_vec(a).map_err(io)?;
            out.push((
                format!("cluster:{}", a.cluster),
                envelope::fingerprint("adopted", &payload),
            ));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Loads the published snapshot, `None` when none exists yet.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::CorruptArtifact`] when the file exists but
    /// fails envelope verification or does not parse, and
    /// [`DurableError::Io`] on storage failure.
    pub fn load(storage: &dyn Storage) -> Result<Option<Self>, DurableError> {
        let Some(bytes) = storage.read(SNAPSHOT_FILE)? else {
            return Ok(None);
        };
        let payload = envelope::open(KIND, &bytes)?;
        let snapshot: EngineSnapshot = serde_json::from_slice(payload)
            .map_err(|e| DurableError::corrupt(KIND, format!("snapshot does not parse: {e}")))?;
        Ok(Some(snapshot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn sample() -> EngineSnapshot {
        let mut snapshot = EngineSnapshot {
            last_lsn: 42,
            tenants: vec![
                TenantRecord {
                    user: "zoe".to_string(),
                    cluster: 1,
                    baseline: vec![0.25, -0.5],
                    quarantined: 3,
                    generation: 9,
                    delta: None,
                },
                TenantRecord {
                    user: "amy".to_string(),
                    cluster: 0,
                    baseline: vec![1.0],
                    quarantined: 0,
                    generation: 2,
                    delta: None,
                },
            ],
            pending: Vec::new(),
            adopted: Vec::new(),
        };
        snapshot.normalize();
        snapshot
    }

    #[test]
    fn pre_lifecycle_snapshot_json_still_loads() {
        // A snapshot sealed before the `adopted` field existed must load
        // with every cluster on its base model.
        let storage = MemStorage::new();
        let legacy = r#"{"last_lsn":5,"tenants":[],"pending":[]}"#;
        let sealed = crate::envelope::seal_str(KIND, legacy);
        storage
            .write_atomic(SNAPSHOT_FILE, sealed.as_bytes())
            .unwrap();
        let loaded = EngineSnapshot::load(&storage).unwrap().unwrap();
        assert_eq!(loaded.last_lsn, 5);
        assert!(loaded.adopted.is_empty());
    }

    #[test]
    fn normalize_sorts_by_user() {
        let snapshot = sample();
        assert_eq!(snapshot.tenants[0].user, "amy");
        assert_eq!(snapshot.tenants[1].user, "zoe");
    }

    #[test]
    fn save_load_round_trip() {
        let storage = MemStorage::new();
        assert_eq!(EngineSnapshot::load(&storage).unwrap(), None);
        let snapshot = sample();
        snapshot.save(&storage).unwrap();
        let loaded = EngineSnapshot::load(&storage).unwrap().unwrap();
        assert_eq!(loaded, snapshot);
    }

    #[test]
    fn identical_state_serializes_to_identical_bytes() {
        let storage_a = MemStorage::new();
        let storage_b = MemStorage::new();
        sample().save(&storage_a).unwrap();
        sample().save(&storage_b).unwrap();
        assert_eq!(
            storage_a.read(SNAPSHOT_FILE).unwrap(),
            storage_b.read(SNAPSHOT_FILE).unwrap()
        );
    }

    #[test]
    fn fingerprints_are_sorted_and_track_state() {
        let snapshot = sample();
        let prints = snapshot.user_fingerprints().unwrap();
        let keys: Vec<&str> = prints.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["amy", "zoe"], "sorted by key");
        assert_eq!(
            prints,
            sample().user_fingerprints().unwrap(),
            "identical state, identical fingerprints"
        );
        let mut mutated = sample();
        mutated.tenants[1].quarantined += 1;
        let changed = mutated.user_fingerprints().unwrap();
        assert_eq!(prints[0], changed[0], "untouched user unchanged");
        assert_ne!(prints[1].1, changed[1].1, "mutated user must move");
        assert!(
            EngineSnapshot::default().user_fingerprints().unwrap().is_empty(),
            "an empty engine fingerprints to nothing"
        );
    }

    #[test]
    fn truncated_snapshot_is_a_typed_error() {
        let storage = MemStorage::new();
        sample().save(&storage).unwrap();
        let bytes = storage.read(SNAPSHOT_FILE).unwrap().unwrap();
        storage
            .write_atomic(SNAPSHOT_FILE, &bytes[..bytes.len() - 5])
            .unwrap();
        match EngineSnapshot::load(&storage) {
            Err(DurableError::CorruptArtifact { artifact, .. }) => {
                assert_eq!(artifact, "snapshot");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn wrong_kind_artifact_is_rejected() {
        let storage = MemStorage::new();
        let sealed = crate::envelope::seal("bundle", b"{}");
        storage.write_atomic(SNAPSHOT_FILE, &sealed).unwrap();
        assert!(EngineSnapshot::load(&storage).is_err());
    }

    #[test]
    fn unparseable_payload_is_a_typed_error() {
        let storage = MemStorage::new();
        let sealed = crate::envelope::seal(KIND, b"{\"last_lsn\":\"not a number\"}");
        storage.write_atomic(SNAPSHOT_FILE, &sealed).unwrap();
        match EngineSnapshot::load(&storage) {
            Err(DurableError::CorruptArtifact { .. }) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
    }
}
