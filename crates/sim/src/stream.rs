//! Deterministic chunk schedules for streaming-ingestion simulation.
//!
//! A wearable does not deliver samples in tidy per-second batches: radio
//! buffering and multi-rate sensors produce irregular, interleaved chunks,
//! with modalities stalling independently. [`chunk_schedule`] turns a
//! recording's sample counts into a seeded, jittered sequence of per-push
//! chunk sizes covering the whole recording — the same seed always yields
//! the same interleaving, so streaming benchmarks and determinism suites
//! can replay identical arrival patterns.

use crate::signals::SignalConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-modality sample counts of one simulated delivery (push).
///
/// Any count may be zero — modalities arrive at different rates and stall
/// independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkSizes {
    /// BVP samples delivered by this push.
    pub bvp: usize,
    /// GSR samples delivered by this push.
    pub gsr: usize,
    /// SKT samples delivered by this push.
    pub skt: usize,
}

/// Splits one recording's worth of samples (`signal.bvp_len()` /
/// `gsr_len()` / `skt_len()`) into a seeded sequence of irregular chunks.
///
/// Each push delivers between `min_secs` and `max_secs` of signal per
/// modality, drawn *independently* per modality so their interleaving
/// drifts (one modality can run several pushes ahead of another before the
/// extractor's window gating re-synchronizes them). The schedule always
/// covers every sample exactly once: summing a field over the returned
/// chunks equals the corresponding `*_len()`.
///
/// # Panics
///
/// Panics if `min_secs` is not positive, not finite, or exceeds `max_secs`.
pub fn chunk_schedule(
    signal: &SignalConfig,
    min_secs: f32,
    max_secs: f32,
    seed: u64,
) -> Vec<ChunkSizes> {
    assert!(
        min_secs > 0.0 && min_secs.is_finite() && max_secs >= min_secs && max_secs.is_finite(),
        "chunk duration bounds must satisfy 0 < min <= max"
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5f32_1ab4_c0de_9d01);
    let mut rem_b = signal.bvp_len();
    let mut rem_g = signal.gsr_len();
    let mut rem_s = signal.skt_len();
    let mut out = Vec::new();
    while rem_b > 0 || rem_g > 0 || rem_s > 0 {
        let mut draw = |fs: f32, rem: &mut usize| -> usize {
            if *rem == 0 {
                return 0;
            }
            let secs = rng.gen_range(min_secs..=max_secs);
            // At least one sample per draw so the schedule always advances.
            let n = ((secs * fs).round() as usize).clamp(1, *rem);
            *rem -= n;
            n
        };
        out.push(ChunkSizes {
            bvp: draw(signal.fs_bvp, &mut rem_b),
            gsr: draw(signal.fs_gsr, &mut rem_g),
            skt: draw(signal.fs_skt, &mut rem_s),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_covers_recording_exactly() {
        let signal = SignalConfig::default();
        let plan = chunk_schedule(&signal, 0.5, 2.0, 7);
        assert_eq!(plan.iter().map(|c| c.bvp).sum::<usize>(), signal.bvp_len());
        assert_eq!(plan.iter().map(|c| c.gsr).sum::<usize>(), signal.gsr_len());
        assert_eq!(plan.iter().map(|c| c.skt).sum::<usize>(), signal.skt_len());
        // Jitter produced more than the trivial one-chunk schedule.
        assert!(plan.len() > 10, "only {} chunks", plan.len());
    }

    #[test]
    fn schedule_is_seed_deterministic_and_seed_sensitive() {
        let signal = SignalConfig::default();
        let a = chunk_schedule(&signal, 0.25, 1.5, 42);
        let b = chunk_schedule(&signal, 0.25, 1.5, 42);
        assert_eq!(a, b);
        let c = chunk_schedule(&signal, 0.25, 1.5, 43);
        assert_ne!(a, c, "different seeds should interleave differently");
    }

    #[test]
    fn modalities_can_stall_independently() {
        // Sub-sample durations for the slow modality force zero-size SKT
        // chunks only after SKT is exhausted; irregularity shows up as
        // pushes where one modality delivers nothing.
        let signal = SignalConfig {
            stimulus_secs: 10.0,
            ..SignalConfig::default()
        };
        let stalled = (0..16).any(|seed| {
            chunk_schedule(&signal, 0.5, 3.0, seed)
                .iter()
                .any(|c| c.bvp == 0 || c.gsr == 0 || c.skt == 0)
        });
        assert!(stalled, "no seed produced a stalled modality");
    }

    #[test]
    #[should_panic(expected = "chunk duration bounds")]
    fn rejects_bad_bounds() {
        chunk_schedule(&SignalConfig::default(), 2.0, 1.0, 0);
    }
}
