//! Per-layer parameter and FLOP accounting.
//!
//! Reproduces the paper's Figure 2 (the CNN-LSTM architecture diagram) as
//! a machine-generated table, and feeds the edge latency model, which
//! converts per-layer FLOPs and byte traffic into device execution time.

use crate::layers::Layer;
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Shape, parameter and FLOP summary of one layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// Output activation shape.
    pub output_shape: Vec<usize>,
    /// Trainable parameter count.
    pub params: usize,
    /// Multiply-accumulate-dominated floating-point operations for one
    /// forward pass.
    pub flops: u64,
}

/// Full-network summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Input shape the summary was computed for.
    pub input_shape: Vec<usize>,
    /// Per-layer rows, in execution order.
    pub layers: Vec<LayerSummary>,
}

impl NetworkSummary {
    /// Total parameters.
    pub fn total_params(&self) -> usize {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total forward FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Renders a fixed-width text table (the Figure 2 reproduction).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<18} {:>10} {:>14}\n",
            "Layer", "Output shape", "Params", "FLOPs"
        ));
        out.push_str(&"-".repeat(62));
        out.push('\n');
        for l in &self.layers {
            out.push_str(&format!(
                "{:<16} {:<18} {:>10} {:>14}\n",
                l.name,
                format!("{:?}", l.output_shape),
                l.params,
                l.flops
            ));
        }
        out.push_str(&"-".repeat(62));
        out.push('\n');
        out.push_str(&format!(
            "total params: {}   total FLOPs: {}\n",
            self.total_params(),
            self.total_flops()
        ));
        out
    }
}

/// Computes the summary of `network` for inputs of `input_shape`.
///
/// # Panics
///
/// Panics when the input shape is incompatible with the network's layers.
pub fn summarize(network: &Network, input_shape: &[usize]) -> NetworkSummary {
    let mut shape = input_shape.to_vec();
    let mut layers = Vec::new();
    for layer in network.layers() {
        let (out_shape, flops) = layer_shape_flops(layer, &shape);
        layers.push(LayerSummary {
            name: layer.name().to_string(),
            output_shape: out_shape.clone(),
            params: layer.param_count(),
            flops,
        });
        shape = out_shape;
    }
    NetworkSummary {
        input_shape: input_shape.to_vec(),
        layers,
    }
}

fn layer_shape_flops(layer: &Layer, input: &[usize]) -> (Vec<usize>, u64) {
    match layer {
        Layer::Conv2d(conv) => {
            let (in_ch, out_ch, kh, kw) = conv.dims();
            assert_eq!(input.len(), 3, "Conv2d expects [C, H, W]");
            assert_eq!(input[0], in_ch, "Conv2d channel mismatch");
            let oh = input[1] - kh + 1;
            let ow = input[2] - kw + 1;
            let flops = 2 * (out_ch * oh * ow * in_ch * kh * kw) as u64;
            (vec![out_ch, oh, ow], flops)
        }
        Layer::Relu(_) => {
            let n: usize = input.iter().product();
            (input.to_vec(), n as u64)
        }
        Layer::MaxPool2d(pool) => {
            let (ph, pw) = pool.window();
            assert_eq!(input.len(), 3, "MaxPool2d expects [C, H, W]");
            let oh = input[1] / ph;
            let ow = input[2] / pw;
            let flops = (input[0] * oh * ow * ph * pw) as u64;
            (vec![input[0], oh, ow], flops)
        }
        Layer::MapToSequence(_) => {
            assert_eq!(input.len(), 3, "MapToSequence expects [C, H, W]");
            (vec![input[2], input[0] * input[1]], 0)
        }
        Layer::Lstm(lstm) => {
            let (d, h) = lstm.dims();
            assert_eq!(input.len(), 2, "LSTM expects [T, D]");
            assert_eq!(input[1], d, "LSTM input width mismatch");
            let t = input[0];
            // Per step: 4H·(D + H) MACs (×2 flops) plus ~10H gate math.
            let per_step = 2 * 4 * h * (d + h) + 10 * h;
            (vec![h], (t * per_step) as u64)
        }
        Layer::Dense(dense) => {
            let (d, o) = dense.dims();
            assert_eq!(input, [d], "Dense input width mismatch");
            (vec![o], 2 * (d * o) as u64)
        }
        Layer::Dropout(_) => {
            let n: usize = input.iter().product();
            (input.to_vec(), n as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::cnn_lstm;
    use crate::tensor::Tensor;

    #[test]
    fn summary_shapes_match_actual_forward() {
        let net = cnn_lstm(123, 9, 2, 1);
        let summary = summarize(&net, &[1, 123, 9]);
        let mut ws = crate::workspace::Workspace::new();
        let out = net.forward(&Tensor::zeros(&[1, 123, 9]), false, &mut ws);
        assert_eq!(
            summary.layers.last().unwrap().output_shape,
            out.shape().to_vec()
        );
        // Spot-check the conv/pool chain: 123→119→59→55→27 on the feature
        // axis, 9→7→7→5→5 on the window axis.
        assert_eq!(summary.layers[0].output_shape, vec![6, 119, 7]);
        assert_eq!(summary.layers[2].output_shape, vec![6, 59, 7]);
        assert_eq!(summary.layers[3].output_shape, vec![12, 55, 5]);
        assert_eq!(summary.layers[5].output_shape, vec![12, 27, 5]);
        assert_eq!(summary.layers[6].output_shape, vec![5, 324]);
    }

    #[test]
    fn summary_params_match_network() {
        let net = cnn_lstm(123, 9, 2, 1);
        let summary = summarize(&net, &[1, 123, 9]);
        assert_eq!(summary.total_params(), net.param_count());
    }

    #[test]
    fn flops_are_positive_and_conv_dominated_or_lstm_dominated() {
        let net = cnn_lstm(123, 9, 2, 1);
        let summary = summarize(&net, &[1, 123, 9]);
        assert!(summary.total_flops() > 100_000);
        for l in &summary.layers {
            if l.name == "Conv2d" || l.name == "LSTM" || l.name == "Dense" {
                assert!(l.flops > 0, "{} has zero flops", l.name);
            }
        }
    }

    #[test]
    fn known_conv_flops() {
        // Conv2d(1→6, 5×3) on [1, 123, 9]: out 6×119×7, MACs = 6·119·7·15.
        let net = cnn_lstm(123, 9, 2, 1);
        let summary = summarize(&net, &[1, 123, 9]);
        assert_eq!(summary.layers[0].flops, 2 * 6 * 119 * 7 * 15);
    }

    #[test]
    fn table_renders_all_layers() {
        let net = cnn_lstm(123, 9, 2, 1);
        let summary = summarize(&net, &[1, 123, 9]);
        let table = summary.to_table();
        for name in [
            "Conv2d",
            "ReLU",
            "MaxPool2d",
            "LSTM",
            "Dense",
            "total params",
        ] {
            assert!(table.contains(name), "missing {name} in table");
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_input_shape_panics() {
        let net = cnn_lstm(123, 9, 2, 1);
        let _ = summarize(&net, &[2, 123, 9]);
    }
}
