//! The session pump: cross-user batching from live sessions into the
//! multi-tenant serving engine.
//!
//! A [`StreamPump`] owns every open [`StreamSession`] of one deployment
//! and connects them to a [`ServeEngine`]. Chunks flow in through
//! [`StreamPump::ingest`] (or the deterministic parallel
//! [`StreamPump::ingest_many`]); [`StreamPump::drain`] collects the maps
//! every session completed and serves them through
//! [`ServeEngine::predict_many`] in request sets capped at the engine's
//! admission limit — the pump inherits PR 4's cross-user cluster batching
//! and admission control instead of reimplementing either.
//!
//! ## Determinism
//!
//! Sessions are independent: a chunk only touches its own user's state,
//! and `ingest_many` partitions its batch by user (preserving each user's
//! chunk order) before workers claim whole users from an atomic index.
//! Drains iterate sessions in sorted user order. Predictions are
//! therefore bit-identical at any worker count, with or without an obs
//! registry installed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use clear_core::Prediction;
use clear_serve::{ServeEngine, ServeError, ServeRequest};
use parking_lot::{Mutex, RwLock};

use crate::session::{IngestReport, SessionConfig, SessionStats, StreamError, StreamSession};

/// Sizing knobs of a [`StreamPump`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PumpConfig {
    /// Configuration applied to every session the pump opens.
    pub session: SessionConfig,
    /// Cap on requests per `predict_many` set; `0` uses the engine's
    /// [`ServeEngine::queue_limit`] (admission slots are held for a whole
    /// set, so exceeding it would guarantee `Overloaded` rejections).
    pub max_batch: usize,
}

impl PumpConfig {
    /// A pump config with engine-derived batching.
    pub fn new(session: SessionConfig) -> Self {
        Self {
            session,
            max_batch: 0,
        }
    }
}

/// One user's chunk inside an [`StreamPump::ingest_many`] batch.
#[derive(Debug, Clone, Copy)]
pub struct ChunkIngest<'a> {
    /// The session's user.
    pub user: &'a str,
    /// BVP samples (may be empty).
    pub bvp: &'a [f32],
    /// GSR samples (may be empty).
    pub gsr: &'a [f32],
    /// SKT samples (may be empty).
    pub skt: &'a [f32],
}

/// One session's outcome from a [`StreamPump::drain`] call.
#[derive(Debug)]
pub struct SessionDrain {
    /// The session's user.
    pub user: String,
    /// Maps served in this drain.
    pub maps: usize,
    /// The engine's verdicts: one prediction per window of every drained
    /// map, or the typed serving error for this user's request.
    pub result: Result<Vec<Prediction>, ServeError>,
}

/// Streaming front-end over a [`ServeEngine`]: session registry, chunk
/// routing, and batched prediction drains.
pub struct StreamPump {
    engine: Arc<ServeEngine>,
    config: PumpConfig,
    sessions: RwLock<BTreeMap<String, Mutex<StreamSession>>>,
    peak_session_bytes: AtomicUsize,
}

impl StreamPump {
    /// Creates a pump serving through `engine`.
    pub fn new(engine: Arc<ServeEngine>, config: PumpConfig) -> Self {
        Self {
            engine,
            config,
            sessions: RwLock::new(BTreeMap::new()),
            peak_session_bytes: AtomicUsize::new(0),
        }
    }

    /// The engine this pump serves through.
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Opens a session for `user` with the pump's session config.
    ///
    /// # Errors
    ///
    /// [`StreamError::AlreadyOpen`] for a duplicate open,
    /// [`StreamError::BadConfig`] for an unusable session config.
    pub fn open(&self, user: &str) -> Result<(), StreamError> {
        let mut sessions = self.sessions.write();
        if sessions.contains_key(user) {
            return Err(StreamError::AlreadyOpen(user.to_string()));
        }
        let session = StreamSession::new(user, self.config.session)?;
        sessions.insert(user.to_string(), Mutex::new(session));
        clear_obs::counter_add(clear_obs::counters::STREAM_SESSIONS_OPENED, 1);
        Ok(())
    }

    /// Closes `user`'s session. Completed maps remain drainable; the
    /// session is removed by the first [`StreamPump::drain`] that finds
    /// it closed and empty.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownSession`] when no session is open.
    pub fn close(&self, user: &str) -> Result<(), StreamError> {
        let sessions = self.sessions.read();
        let cell = sessions
            .get(user)
            .ok_or_else(|| StreamError::UnknownSession(user.to_string()))?;
        let mut session = cell.lock();
        session.close();
        self.note_peak(session.stats().peak_resident_bytes);
        clear_obs::counter_add(clear_obs::counters::STREAM_SESSIONS_CLOSED, 1);
        Ok(())
    }

    /// Routes one chunk to `user`'s session.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownSession`] when no session is open, plus any
    /// session-level error ([`StreamError::Closed`],
    /// [`StreamError::OverBudget`]).
    pub fn ingest(
        &self,
        user: &str,
        bvp: &[f32],
        gsr: &[f32],
        skt: &[f32],
    ) -> Result<IngestReport, StreamError> {
        let _span = clear_obs::span(clear_obs::Stage::StreamIngest);
        let sessions = self.sessions.read();
        let cell = sessions
            .get(user)
            .ok_or_else(|| StreamError::UnknownSession(user.to_string()))?;
        let mut session = cell.lock();
        let report = session.ingest(bvp, gsr, skt);
        self.note_peak(session.stats().peak_resident_bytes);
        report
    }

    /// Ingests a batch of chunks across users on `threads` workers,
    /// returning per-chunk results in batch order.
    ///
    /// Chunks are partitioned by user with each user's order preserved;
    /// workers claim whole users from an atomic index, so results are
    /// bit-identical to a single-threaded replay at any worker count.
    pub fn ingest_many(
        &self,
        batch: &[ChunkIngest<'_>],
        threads: usize,
    ) -> Vec<Result<IngestReport, StreamError>> {
        let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, chunk) in batch.iter().enumerate() {
            groups.entry(chunk.user).or_default().push(i);
        }
        let users: Vec<&str> = groups.keys().copied().collect();
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Result<IngestReport, StreamError>)>> =
            Mutex::new(Vec::with_capacity(batch.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let u = next.fetch_add(1, Ordering::SeqCst);
                        if u >= users.len() {
                            break;
                        }
                        for &idx in &groups[users[u]] {
                            let c = &batch[idx];
                            local.push((idx, self.ingest(c.user, c.bvp, c.gsr, c.skt)));
                        }
                    }
                    collected.lock().extend(local);
                });
            }
        });
        let mut slots: Vec<Option<Result<IngestReport, StreamError>>> =
            (0..batch.len()).map(|_| None).collect();
        for (idx, result) in collected.into_inner() {
            slots[idx] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every batch index processed exactly once"))
            .collect()
    }

    /// Collects every session's completed maps (sorted user order) and
    /// serves them through [`ServeEngine::predict_many`], chunking the
    /// request sets at the configured batch cap. Sessions that are closed
    /// and fully drained are removed.
    pub fn drain(&self) -> Vec<SessionDrain> {
        let _span = clear_obs::span(clear_obs::Stage::StreamPump);
        let mut ready: Vec<(String, Vec<clear_features::FeatureMap>)> = Vec::new();
        {
            let sessions = self.sessions.read();
            for (user, cell) in sessions.iter() {
                let mut session = cell.lock();
                let maps = session.take_ready();
                if !maps.is_empty() {
                    ready.push((user.clone(), maps));
                }
            }
        }
        {
            let mut sessions = self.sessions.write();
            sessions.retain(|_, cell| {
                let session = cell.lock();
                !(session.is_closed() && session.ready_maps() == 0)
            });
        }
        let limit = if self.config.max_batch == 0 {
            self.engine.queue_limit()
        } else {
            self.config.max_batch
        }
        .max(1);
        let mut out = Vec::with_capacity(ready.len());
        for group in ready.chunks(limit) {
            let requests: Vec<ServeRequest<'_>> = group
                .iter()
                .map(|(user, maps)| ServeRequest {
                    user: user.as_str(),
                    maps: maps.as_slice(),
                })
                .collect();
            let results = self.engine.predict_many(&requests);
            for ((user, maps), result) in group.iter().zip(results) {
                out.push(SessionDrain {
                    user: user.clone(),
                    maps: maps.len(),
                    result,
                });
            }
        }
        out
    }

    /// Open sessions (closed-but-undrained sessions count until removal).
    pub fn session_count(&self) -> usize {
        self.sessions.read().len()
    }

    /// Sum of resident bytes across open sessions.
    pub fn resident_bytes(&self) -> usize {
        self.sessions
            .read()
            .values()
            .map(|cell| cell.lock().resident_bytes())
            .sum()
    }

    /// Highest single-session resident watermark observed across the
    /// pump's lifetime (sessions already removed included).
    pub fn peak_session_bytes(&self) -> usize {
        let live = self
            .sessions
            .read()
            .values()
            .map(|cell| cell.lock().stats().peak_resident_bytes)
            .max()
            .unwrap_or(0);
        self.peak_session_bytes.load(Ordering::Relaxed).max(live)
    }

    /// Lifetime counters of `user`'s session.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownSession`] when no session is open.
    pub fn stats(&self, user: &str) -> Result<SessionStats, StreamError> {
        let sessions = self.sessions.read();
        let cell = sessions
            .get(user)
            .ok_or_else(|| StreamError::UnknownSession(user.to_string()))?;
        let stats = cell.lock().stats();
        Ok(stats)
    }

    fn note_peak(&self, bytes: usize) {
        self.peak_session_bytes.fetch_max(bytes, Ordering::Relaxed);
    }
}
