//! Configuration of the full CLEAR pipeline and its evaluation protocols.

use clear_clustering::hierarchy::HierarchyConfig;
use clear_clustering::kmeans::KMeansConfig;
use clear_clustering::refine::RefineConfig;
use clear_features::WindowConfig;
use clear_nn::optim::OptimizerConfig;
use clear_nn::train::TrainConfig;
use clear_sim::CohortConfig;
use serde::{Deserialize, Serialize};

/// Everything needed to run CLEAR end to end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClearConfig {
    /// Synthetic cohort (the WEMAC substitute).
    pub cohort: CohortConfig,
    /// Sliding-window feature extraction.
    pub window: WindowConfig,
    /// Number of global clusters (the paper selects K = 4).
    pub k: usize,
    /// Global-clustering refinement parameters (per [19]).
    pub refine: RefineConfig,
    /// Internal sub-centroid construction for cold-start assignment.
    pub hierarchy: HierarchyConfig,
    /// Cloud pre-training hyper-parameters.
    pub train: TrainConfig,
    /// Fine-tuning hyper-parameters (edge stage).
    pub finetune: TrainConfig,
    /// Fraction of a new user's *unlabeled* data used for Cluster
    /// Assignment (the paper uses 10 %).
    pub ca_fraction: f32,
    /// Fraction of a new user's *labeled* data used for fine-tuning (the
    /// paper uses 20 %; the rest is the test set).
    pub ft_fraction: f32,
    /// Subjects in the General-model baseline (the paper uses 11, the
    /// average cluster size).
    pub general_subjects: usize,
    /// Fraction of cluster training data held out for checkpoint
    /// selection (early stopping).
    pub val_fraction: f32,
    /// Use the compute-lean model preset (recommended on small CPUs).
    pub compact_model: bool,
    /// Master seed for everything not covered by the nested configs.
    pub seed: u64,
}

impl ClearConfig {
    /// Paper-scale configuration: 44 subjects (17/13/7/7), ~792 feature
    /// maps, K = 4, CA on 10 % unlabeled data, FT on 20 % labeled data.
    pub fn paper(seed: u64) -> Self {
        Self {
            cohort: CohortConfig::paper_scale(seed),
            window: WindowConfig::default(),
            k: 4,
            refine: RefineConfig {
                kmeans: KMeansConfig {
                    k: 4,
                    max_iter: 100,
                    n_init: 8,
                    seed,
                },
                rounds: 20,
                subset_fraction: 0.8,
            },
            hierarchy: HierarchyConfig {
                sub_k: 2,
                seed: seed.wrapping_add(1),
            },
            train: TrainConfig {
                epochs: 12,
                batch_size: 16,
                optimizer: OptimizerConfig::adam(1.5e-3),
                seed: seed.wrapping_add(2),
                patience: 4,
                trainable_tail: None,
                l2_sp: None,
            },
            finetune: TrainConfig {
                epochs: 25,
                batch_size: 2,
                optimizer: OptimizerConfig::adam(5e-3),
                seed: seed.wrapping_add(3),
                patience: 0,
                // Freeze everything but the dense head and anchor it to the
                // cluster checkpoint with L2-SP: on a 4-sample labeled
                // budget this calibrates the subject's decision threshold
                // without catastrophic drift (selected by `tuning_sweep`).
                trainable_tail: Some(1),
                l2_sp: Some(0.02),
            },
            ca_fraction: 0.10,
            ft_fraction: 0.20,
            general_subjects: 11,
            val_fraction: 0.15,
            compact_model: true,
            seed,
        }
    }

    /// Reduced configuration for unit/integration tests: 8 subjects (2 per
    /// archetype), 8 recordings each, 30-second stimuli, few epochs.
    pub fn quick(seed: u64) -> Self {
        let mut config = Self::paper(seed);
        let mut cohort = CohortConfig {
            subjects_per_archetype: [2, 2, 2, 2],
            recordings_per_subject: 8,
            ..CohortConfig::small(seed)
        };
        // Two 3-wide convolutions need at least 5 window columns; 42 s of
        // stimulus yields 6 windows under the default 12 s / 6 s windowing.
        cohort.signal.stimulus_secs = 42.0;
        // The smoke profile runs clusters of 1-2 subjects; keep the task
        // easy enough that its sanity assertions are meaningful.
        cohort.class_overlap = 0.40;
        config.cohort = cohort;
        config.refine.rounds = 6;
        config.refine.kmeans.n_init = 4;
        config.train.epochs = 6;
        config.train.patience = 3;
        config.finetune.epochs = 6;
        config.general_subjects = 3;
        config
    }

    /// The paper's K = 4 cluster count.
    pub fn cluster_count(&self) -> usize {
        self.k
    }
}

impl Default for ClearConfig {
    fn default() -> Self {
        Self::paper(2025)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_paper_constants() {
        let c = ClearConfig::paper(1);
        assert_eq!(c.k, 4);
        assert_eq!(c.cohort.subjects_per_archetype, [17, 13, 7, 7]);
        assert!((c.ca_fraction - 0.10).abs() < 1e-6);
        assert!((c.ft_fraction - 0.20).abs() < 1e-6);
        assert_eq!(c.general_subjects, 11);
        assert_eq!(c.refine.kmeans.k, 4);
    }

    #[test]
    fn quick_profile_is_smaller() {
        let q = ClearConfig::quick(1);
        let p = ClearConfig::paper(1);
        assert!(q.cohort.total_subjects() < p.cohort.total_subjects());
        assert!(q.train.epochs < p.train.epochs);
        assert_eq!(q.k, 4);
    }

    #[test]
    fn serde_round_trip() {
        let c = ClearConfig::paper(3);
        let json = serde_json::to_string(&c).unwrap();
        let back: ClearConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
