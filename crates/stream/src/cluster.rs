//! The cluster pump: streaming sessions served by a replicated cluster.
//!
//! [`ClusterPump`] is the cluster-backed sibling of
//! [`StreamPump`](crate::StreamPump): the same session registry and
//! incremental window extraction, but predictions flow through a
//! [`clear_cluster::ServeCluster`] — which partitions users across
//! members, replicates every mutation and fails over on member loss —
//! instead of a single [`clear_serve::ServeEngine`].
//!
//! ## Exactly-once delivery across failover
//!
//! A leader crash between drains must neither lose nor duplicate
//! predictions. The pump makes delivery idempotent by sequencing: every
//! completed map gets a per-user, monotonically increasing sequence
//! number when it leaves its session, and lives in a pending queue until
//! the cluster acknowledges it. One drain serves each user's pending
//! run with a single all-or-nothing `predict` call:
//!
//! * **success** — the user's delivered watermark advances past the
//!   run's last sequence number and the queue empties; a later
//!   redelivery attempt of the same numbers is filtered by the
//!   watermark, so nothing is ever served twice;
//! * **failure** (e.g. the partition lost its leader and every
//!   follower) — the queue keeps the run, in order, and the next drain
//!   re-routes it to whatever member now leads the partition. Per-user
//!   order is preserved because the queue is FIFO and a failed run never
//!   advances the watermark.
//!
//! The result is bit-identical to a run that never failed over: the
//! fault-matrix test kills a partition leader mid-session and compares
//! every prediction bit against an undisturbed cluster.

use std::collections::{BTreeMap, VecDeque};

use clear_cluster::{ClusterError, ServeCluster};
use clear_core::Prediction;
use clear_features::FeatureMap;

use crate::session::{IngestReport, SessionConfig, SessionStats, StreamError, StreamSession};

/// One map waiting for cluster acknowledgement.
#[derive(Debug, Clone)]
struct PendingMap {
    /// Per-user delivery sequence number (1-based).
    seq: u64,
    /// The completed feature map.
    map: FeatureMap,
    /// Whether a previous drain already tried (and failed) to deliver
    /// this map — a later success counts it as a redelivery.
    attempted: bool,
}

/// Per-user delivery state: sequence allocator, pending queue and the
/// delivered watermark.
#[derive(Debug, Default)]
struct DeliveryState {
    /// Last sequence number assigned to a map of this user.
    last_assigned: u64,
    /// Last sequence number the cluster acknowledged.
    delivered_through: u64,
    /// Maps assigned but not yet acknowledged, in sequence order.
    pending: VecDeque<PendingMap>,
}

/// One session's outcome from a [`ClusterPump::drain`] call.
#[derive(Debug)]
pub struct ClusterSessionDrain {
    /// The session's user.
    pub user: String,
    /// Maps the cluster acknowledged in this drain (0 on failure).
    pub maps: usize,
    /// The cluster's verdicts: one prediction per window of every
    /// delivered map, or the typed cluster error that kept the user's
    /// run pending (it will be re-routed by the next drain).
    pub result: Result<Vec<Prediction>, ClusterError>,
}

/// Streaming front-end over a [`ServeCluster`]: session registry, chunk
/// routing, and sequenced exactly-once prediction drains.
///
/// Unlike [`StreamPump`](crate::StreamPump) this type is single-threaded
/// (`&mut self`), matching the deterministic single-threaded
/// orchestration of [`ServeCluster`] itself.
pub struct ClusterPump {
    config: SessionConfig,
    sessions: BTreeMap<String, StreamSession>,
    delivery: BTreeMap<String, DeliveryState>,
    peak_session_bytes: usize,
}

impl ClusterPump {
    /// Creates a pump whose sessions use `config`.
    pub fn new(config: SessionConfig) -> Self {
        Self {
            config,
            sessions: BTreeMap::new(),
            delivery: BTreeMap::new(),
            peak_session_bytes: 0,
        }
    }

    /// Opens a session for `user`.
    ///
    /// # Errors
    ///
    /// [`StreamError::AlreadyOpen`] for a duplicate open,
    /// [`StreamError::BadConfig`] for an unusable session config.
    pub fn open(&mut self, user: &str) -> Result<(), StreamError> {
        if self.sessions.contains_key(user) {
            return Err(StreamError::AlreadyOpen(user.to_string()));
        }
        let session = StreamSession::new(user, self.config)?;
        self.sessions.insert(user.to_string(), session);
        self.delivery.entry(user.to_string()).or_default();
        clear_obs::counter_add(clear_obs::counters::STREAM_SESSIONS_OPENED, 1);
        Ok(())
    }

    /// Closes `user`'s session. Completed maps remain deliverable; the
    /// session is removed by the first [`ClusterPump::drain`] that finds
    /// it closed with nothing ready and nothing pending.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownSession`] when no session is open.
    pub fn close(&mut self, user: &str) -> Result<(), StreamError> {
        let session = self
            .sessions
            .get_mut(user)
            .ok_or_else(|| StreamError::UnknownSession(user.to_string()))?;
        session.close();
        self.peak_session_bytes = self
            .peak_session_bytes
            .max(session.stats().peak_resident_bytes);
        clear_obs::counter_add(clear_obs::counters::STREAM_SESSIONS_CLOSED, 1);
        Ok(())
    }

    /// Routes one chunk to `user`'s session.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownSession`] when no session is open, plus any
    /// session-level error ([`StreamError::Closed`],
    /// [`StreamError::OverBudget`]).
    pub fn ingest(
        &mut self,
        user: &str,
        bvp: &[f32],
        gsr: &[f32],
        skt: &[f32],
    ) -> Result<IngestReport, StreamError> {
        let _span = clear_obs::span(clear_obs::Stage::StreamIngest);
        let session = self
            .sessions
            .get_mut(user)
            .ok_or_else(|| StreamError::UnknownSession(user.to_string()))?;
        let report = session.ingest(bvp, gsr, skt);
        self.peak_session_bytes = self
            .peak_session_bytes
            .max(session.stats().peak_resident_bytes);
        report
    }

    /// Sequences every session's completed maps into the pending queues,
    /// then delivers each user's queue through one all-or-nothing
    /// [`ServeCluster::predict`] call (sorted user order). A failed
    /// delivery keeps the user's queue intact for the next drain —
    /// re-routed to whatever member then leads the partition, order
    /// preserved, duplicates filtered by the delivered watermark.
    pub fn drain(&mut self, cluster: &mut ServeCluster) -> Vec<ClusterSessionDrain> {
        let _span = clear_obs::span(clear_obs::Stage::StreamPump);
        // Phase 1: move newly completed maps into the sequenced queues.
        for (user, session) in self.sessions.iter_mut() {
            let maps = session.take_ready();
            if maps.is_empty() {
                continue;
            }
            let state = self.delivery.entry(user.clone()).or_default();
            for map in maps {
                state.last_assigned += 1;
                state.pending.push_back(PendingMap {
                    seq: state.last_assigned,
                    map,
                    attempted: false,
                });
            }
        }
        // Closed sessions with nothing ready stay on the books until
        // their pending queue has fully delivered.
        let delivery = &self.delivery;
        self.sessions.retain(|user, session| {
            !(session.is_closed()
                && session.ready_maps() == 0
                && delivery.get(user).map_or(true, |s| s.pending.is_empty()))
        });
        // Phase 2: deliver, one user at a time, in sorted order.
        let mut out = Vec::new();
        for (user, state) in self.delivery.iter_mut() {
            // The watermark filter makes redelivery idempotent even if a
            // queue were ever rebuilt from sequenced state.
            while state
                .pending
                .front()
                .is_some_and(|p| p.seq <= state.delivered_through)
            {
                state.pending.pop_front();
            }
            if state.pending.is_empty() {
                continue;
            }
            let maps: Vec<FeatureMap> =
                state.pending.iter().map(|p| p.map.clone()).collect();
            match cluster.predict(user, &maps) {
                Ok(predictions) => {
                    let redelivered =
                        state.pending.iter().filter(|p| p.attempted).count();
                    if redelivered > 0 {
                        clear_obs::counter_add(
                            clear_obs::counters::STREAM_CLUSTER_REDELIVERIES,
                            redelivered as u64,
                        );
                    }
                    state.delivered_through = state
                        .pending
                        .back()
                        .map(|p| p.seq)
                        .unwrap_or(state.delivered_through);
                    let delivered = state.pending.len();
                    state.pending.clear();
                    out.push(ClusterSessionDrain {
                        user: user.clone(),
                        maps: delivered,
                        result: Ok(predictions),
                    });
                }
                Err(e) => {
                    for p in state.pending.iter_mut() {
                        p.attempted = true;
                    }
                    out.push(ClusterSessionDrain {
                        user: user.clone(),
                        maps: 0,
                        result: Err(e),
                    });
                }
            }
        }
        out
    }

    /// Open sessions (closed-but-undelivered sessions count until
    /// removal).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Maps sequenced but not yet acknowledged by the cluster, for
    /// `user`.
    pub fn pending_maps_of(&self, user: &str) -> usize {
        self.delivery
            .get(user)
            .map_or(0, |s| s.pending.len())
    }

    /// Last sequence number the cluster acknowledged for `user`.
    pub fn delivered_through(&self, user: &str) -> u64 {
        self.delivery
            .get(user)
            .map_or(0, |s| s.delivered_through)
    }

    /// Sum of resident bytes across open sessions.
    pub fn resident_bytes(&self) -> usize {
        self.sessions.values().map(|s| s.resident_bytes()).sum()
    }

    /// Highest single-session resident watermark observed across the
    /// pump's lifetime.
    pub fn peak_session_bytes(&self) -> usize {
        let live = self
            .sessions
            .values()
            .map(|s| s.stats().peak_resident_bytes)
            .max()
            .unwrap_or(0);
        self.peak_session_bytes.max(live)
    }

    /// Lifetime counters of `user`'s session.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownSession`] when no session is open.
    pub fn stats(&self, user: &str) -> Result<SessionStats, StreamError> {
        self.sessions
            .get(user)
            .map(|s| s.stats())
            .ok_or_else(|| StreamError::UnknownSession(user.to_string()))
    }
}
