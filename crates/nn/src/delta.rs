//! Sparse weight deltas: the serialized-evicted form of a personalized fork.
//!
//! A personalized checkpoint differs from its cluster base only in the
//! fine-tuned tail (the dense head under the default transfer-learning
//! freeze), so keeping a full `Network` per inactive user wastes nearly
//! the whole parameter budget. A [`WeightDelta`] stores the difference as
//! sparse `(index, xor)` pairs over the raw f32 *bit patterns* — XOR, not
//! arithmetic difference, because `(a - b) + b` is not exact in floating
//! point while `a ^ b ^ b == a` always is. Applying the delta to the same
//! base therefore reconstructs the fork's weights bit-for-bit, including
//! non-finite values.
//!
//! Deltas capture *weights only*. Dropout draw counters are not part of a
//! delta: they are irrelevant at inference time (dropout is the identity
//! in eval mode), and personalization always restarts from the cluster
//! base, never from a rehydrated fork.

use crate::network::Network;
use crate::NnError;
use serde::{Deserialize, Serialize};

/// A sparse, exactly-invertible difference between two same-shaped
/// networks (`tuned` relative to `base`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightDelta {
    /// Parameter count of the networks this delta connects.
    param_count: usize,
    /// `(flat index, base_bits ^ tuned_bits)` for every differing weight.
    entries: Vec<(u32, u32)>,
}

impl WeightDelta {
    /// Computes the delta turning `base`'s weights into `tuned`'s.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the two networks have
    /// different parameter counts, and [`NnError::Checkpoint`] when the
    /// parameter count exceeds the sparse index range (`u32`).
    pub fn between(base: &Network, tuned: &Network) -> Result<Self, NnError> {
        let b = base.parameters_flat();
        let t = tuned.parameters_flat();
        if b.len() != t.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} parameters", b.len()),
                actual: vec![t.len()],
            });
        }
        if b.len() > u32::MAX as usize {
            return Err(NnError::Checkpoint(format!(
                "{} parameters exceed the sparse delta index range",
                b.len()
            )));
        }
        let entries = b
            .iter()
            .zip(&t)
            .enumerate()
            .filter_map(|(i, (bv, tv))| {
                let xor = bv.to_bits() ^ tv.to_bits();
                (xor != 0).then_some((i as u32, xor))
            })
            .collect();
        Ok(Self {
            param_count: b.len(),
            entries,
        })
    }

    /// Reconstructs the tuned network by applying this delta to `base`.
    /// When `base` is the network the delta was computed against, the
    /// result's weights are bit-identical to the original fork.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `base`'s parameter count
    /// does not match the delta, and [`NnError::Checkpoint`] when an
    /// entry indexes out of range (a corrupt delta).
    pub fn apply(&self, base: &Network) -> Result<Network, NnError> {
        let mut flat = base.parameters_flat();
        if flat.len() != self.param_count {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} parameters", self.param_count),
                actual: vec![flat.len()],
            });
        }
        for &(i, xor) in &self.entries {
            let i = i as usize;
            if i >= flat.len() {
                return Err(NnError::Checkpoint(format!(
                    "delta index {i} out of range for {} parameters",
                    flat.len()
                )));
            }
            flat[i] = f32::from_bits(flat[i].to_bits() ^ xor);
        }
        let mut net = base.clone();
        net.set_parameters_flat(&flat);
        Ok(net)
    }

    /// Number of weights that differ between base and fork.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the fork is weight-identical to its base.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parameter count of the networks this delta connects.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Fraction of parameters the delta touches, in `[0, 1]` — small under
    /// tail-only fine-tuning, which is what makes delta eviction pay.
    pub fn density(&self) -> f32 {
        if self.param_count == 0 {
            0.0
        } else {
            self.entries.len() as f32 / self.param_count as f32
        }
    }

    /// Serializes the delta to JSON (the evicted wire/storage form).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Checkpoint`] on serializer failure.
    pub fn to_json(&self) -> Result<String, NnError> {
        serde_json::to_string(self).map_err(|e| NnError::Checkpoint(e.to_string()))
    }

    /// Restores a delta from [`WeightDelta::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Checkpoint`] on parse failure.
    pub fn from_json(json: &str) -> Result<Self, NnError> {
        serde_json::from_str(json).map_err(|e| NnError::Checkpoint(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{cnn_lstm_compact, cnn_lstm_custom};

    fn base() -> Network {
        cnn_lstm_compact(32, 6, 2, 9)
    }

    fn perturbed_tail(base: &Network) -> Network {
        let mut flat = base.parameters_flat();
        let n = flat.len();
        // Touch the last 30 weights (the dense head region) plus one
        // mid-network weight, with awkward values included.
        for (k, v) in flat[n - 30..].iter_mut().enumerate() {
            *v += 0.125 * (k as f32 + 1.0);
        }
        flat[n / 2] = -0.0;
        let mut tuned = base.clone();
        tuned.set_parameters_flat(&flat);
        tuned
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let base = base();
        let tuned = perturbed_tail(&base);
        let delta = WeightDelta::between(&base, &tuned).unwrap();
        let restored = delta.apply(&base).unwrap();
        let want: Vec<u32> = tuned
            .parameters_flat()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let got: Vec<u32> = restored
            .parameters_flat()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(want, got, "rehydrated fork diverged from the original");
    }

    #[test]
    fn tail_only_changes_stay_sparse() {
        let base = base();
        let tuned = perturbed_tail(&base);
        let delta = WeightDelta::between(&base, &tuned).unwrap();
        assert_eq!(delta.param_count(), base.param_count());
        // -0.0 has a different bit pattern than +0.0 only when the base
        // value was not already -0.0; either way the tail edits count.
        assert!(
            delta.len() >= 30,
            "expected ≥ 30 entries, got {}",
            delta.len()
        );
        assert!(delta.density() < 0.05, "density {}", delta.density());
    }

    #[test]
    fn identical_networks_give_an_empty_delta() {
        let base = base();
        let delta = WeightDelta::between(&base, &base).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
        let restored = delta.apply(&base).unwrap();
        assert_eq!(restored.parameters_flat(), base.parameters_flat());
    }

    #[test]
    fn non_finite_values_survive_the_round_trip() {
        let base = base();
        let mut flat = base.parameters_flat();
        flat[0] = f32::NAN;
        flat[1] = f32::INFINITY;
        flat[2] = f32::NEG_INFINITY;
        let mut tuned = base.clone();
        tuned.set_parameters_flat(&flat);
        let delta = WeightDelta::between(&base, &tuned).unwrap();
        let restored = delta.apply(&base).unwrap();
        let got = restored.parameters_flat();
        assert!(got[0].is_nan());
        assert_eq!(got[0].to_bits(), flat[0].to_bits());
        assert_eq!(got[1], f32::INFINITY);
        assert_eq!(got[2], f32::NEG_INFINITY);
    }

    #[test]
    fn mismatched_shapes_are_errors() {
        let a = base();
        let b = cnn_lstm_custom(32, 6, 2, 4, 8, 2, 3, 16, 0.3, 1);
        assert!(WeightDelta::between(&a, &b).is_err());
        let tuned = perturbed_tail(&a);
        let delta = WeightDelta::between(&a, &tuned).unwrap();
        assert!(delta.apply(&b).is_err());
    }

    #[test]
    fn json_round_trip_preserves_the_delta() {
        let base = base();
        let tuned = perturbed_tail(&base);
        let delta = WeightDelta::between(&base, &tuned).unwrap();
        let json = delta.to_json().unwrap();
        let restored = WeightDelta::from_json(&json).unwrap();
        assert_eq!(delta, restored);
        assert!(WeightDelta::from_json("{").is_err());
    }
}
